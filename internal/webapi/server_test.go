package webapi

import (
	"bufio"
	"bytes"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/synth"
)

func newTestServer(t *testing.T, opts ...Option) (*httptest.Server, *synth.Archive, *Server) {
	t.Helper()
	arch, err := synth.Generate(synth.TinyConfig(), 31)
	if err != nil {
		t.Fatal(err)
	}
	sys, err := core.NewSystemFromCollection(arch.Collection, core.Config{UseImplicit: true, UseProfile: true})
	if err != nil {
		t.Fatal(err)
	}
	srv, err := NewServer(sys, opts...)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { srv.Close() })
	ts := httptest.NewServer(srv.Handler())
	t.Cleanup(ts.Close)
	return ts, arch, srv
}

// noRedirectClient surfaces 3xx responses instead of following them.
var noRedirectClient = &http.Client{
	CheckRedirect: func(*http.Request, []*http.Request) error { return http.ErrUseLastResponse },
}

func doJSON(t *testing.T, method, url string, body any, wantStatus int, out any) *http.Response {
	t.Helper()
	var rd *bytes.Reader
	if body != nil {
		data, err := json.Marshal(body)
		if err != nil {
			t.Fatal(err)
		}
		rd = bytes.NewReader(data)
	} else {
		rd = bytes.NewReader(nil)
	}
	req, err := http.NewRequest(method, url, rd)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := noRedirectClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != wantStatus {
		var e map[string]any
		_ = json.NewDecoder(resp.Body).Decode(&e)
		t.Fatalf("%s %s: status %d, want %d (%v)", method, url, resp.StatusCode, wantStatus, e)
	}
	if out != nil {
		if err := json.NewDecoder(resp.Body).Decode(out); err != nil {
			t.Fatalf("decode response: %v", err)
		}
	}
	return resp
}

// wantEnvelope asserts the uniform error body and returns its code.
func wantEnvelope(t *testing.T, method, url string, body any, wantStatus int, wantCode string) {
	t.Helper()
	var env struct {
		Error struct {
			Code    string `json:"code"`
			Message string `json:"message"`
		} `json:"error"`
	}
	doJSON(t, method, url, body, wantStatus, &env)
	if env.Error.Code != wantCode || env.Error.Message == "" {
		t.Fatalf("%s %s: envelope = %+v, want code %q with message", method, url, env, wantCode)
	}
}

func createSession(t *testing.T, ts *httptest.Server, body any) string {
	t.Helper()
	var resp struct {
		SessionID string `json:"session_id"`
	}
	doJSON(t, "POST", ts.URL+"/api/v1/sessions", body, http.StatusCreated, &resp)
	if resp.SessionID == "" {
		t.Fatal("empty session id")
	}
	return resp.SessionID
}

func TestHealthz(t *testing.T) {
	ts, _, _ := newTestServer(t)
	var out struct {
		Status   string `json:"status"`
		Sessions int    `json:"sessions"`
	}
	resp := doJSON(t, "GET", ts.URL+"/api/v1/healthz", nil, http.StatusOK, &out)
	if out.Status != "ok" {
		t.Errorf("healthz = %+v", out)
	}
	if resp.Header.Get(RequestIDHeader) == "" {
		t.Error("response missing request id header")
	}
}

func TestRequestIDEcho(t *testing.T) {
	ts, _, _ := newTestServer(t)
	req, _ := http.NewRequest("GET", ts.URL+"/api/v1/healthz", nil)
	req.Header.Set(RequestIDHeader, "trace-42")
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if got := resp.Header.Get(RequestIDHeader); got != "trace-42" {
		t.Errorf("request id = %q, want echo of trace-42", got)
	}
}

func TestSessionLifecycle(t *testing.T) {
	ts, _, _ := newTestServer(t)
	id := createSession(t, ts, map[string]any{
		"user_id":   "alice",
		"interests": map[string]float64{"sports": 0.9},
	})
	var state struct {
		SessionID string             `json:"session_id"`
		Step      int                `json:"step"`
		Interests map[string]float64 `json:"interests"`
	}
	doJSON(t, "GET", ts.URL+"/api/v1/sessions/"+id, nil, http.StatusOK, &state)
	if state.SessionID != id || state.Step != 0 {
		t.Errorf("state = %+v", state)
	}
	if state.Interests["sports"] != 0.9 {
		t.Errorf("interests = %v", state.Interests)
	}
	doJSON(t, "DELETE", ts.URL+"/api/v1/sessions/"+id, nil, http.StatusNoContent, nil)
	wantEnvelope(t, "GET", ts.URL+"/api/v1/sessions/"+id, nil, http.StatusNotFound, "not_found")
	wantEnvelope(t, "DELETE", ts.URL+"/api/v1/sessions/"+id, nil, http.StatusNotFound, "not_found")
}

func TestCreateSessionValidation(t *testing.T) {
	ts, _, _ := newTestServer(t)
	req, _ := http.NewRequest("POST", ts.URL+"/api/v1/sessions", strings.NewReader("{broken"))
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Errorf("broken JSON: %d", resp.StatusCode)
	}
	wantEnvelope(t, "POST", ts.URL+"/api/v1/sessions",
		map[string]any{"user_id": "x", "interests": map[string]float64{"astrology": 0.5}},
		http.StatusBadRequest, "invalid_request")
	wantEnvelope(t, "POST", ts.URL+"/api/v1/sessions",
		map[string]any{"user_id": "x", "interests": map[string]float64{"sports": 1.5}},
		http.StatusBadRequest, "invalid_request")
	// Empty body means an anonymous session.
	doJSON(t, "POST", ts.URL+"/api/v1/sessions", nil, http.StatusCreated, nil)
}

func TestSearchAndAdapt(t *testing.T) {
	ts, arch, _ := newTestServer(t)
	id := createSession(t, ts, map[string]any{})
	topic := arch.Truth.SearchTopics[0]

	var res struct {
		Step  int `json:"step"`
		Total int `json:"total"`
		Hits  []struct {
			Rank     int     `json:"rank"`
			ShotID   string  `json:"shot_id"`
			Score    float64 `json:"score"`
			Category string  `json:"category"`
		} `json:"hits"`
	}
	url := fmt.Sprintf("%s/api/v1/search?session=%s&q=%s&limit=5", ts.URL, id, strings.ReplaceAll(topic.Query, " ", "+"))
	doJSON(t, "GET", url, nil, http.StatusOK, &res)
	if len(res.Hits) == 0 || res.Step != 1 {
		t.Fatalf("search response: %+v", res)
	}
	if res.Hits[0].Category == "" {
		t.Error("hits missing story metadata")
	}
	if res.Hits[0].Rank != 0 {
		t.Errorf("first hit rank = %d", res.Hits[0].Rank)
	}
	// Feed clicks on the first hit.
	events := []map[string]any{
		{"action": "click_keyframe", "shot": res.Hits[0].ShotID, "rank": 0, "topic": -1, "t": "2008-01-01T00:00:00Z"},
		{"action": "play", "shot": res.Hits[0].ShotID, "rank": 0, "seconds": 12.0, "topic": -1, "t": "2008-01-01T00:00:01Z"},
	}
	var evResp struct {
		Observed int `json:"observed"`
	}
	doJSON(t, "POST", ts.URL+"/api/v1/events",
		map[string]any{"session_id": id, "events": events}, http.StatusOK, &evResp)
	if evResp.Observed != 2 {
		t.Errorf("observed = %d", evResp.Observed)
	}
	// Second search: step advances, session state reflects evidence.
	doJSON(t, "GET", url, nil, http.StatusOK, &res)
	if res.Step != 2 {
		t.Errorf("step = %d, want 2", res.Step)
	}
	var state struct {
		Evidence int `json:"evidence"`
	}
	doJSON(t, "GET", ts.URL+"/api/v1/sessions/"+id, nil, http.StatusOK, &state)
	if state.Evidence != 2 {
		t.Errorf("evidence = %d", state.Evidence)
	}
}

func TestSearchPagination(t *testing.T) {
	ts, arch, _ := newTestServer(t)
	id := createSession(t, ts, map[string]any{})
	topic := arch.Truth.SearchTopics[0]
	q := strings.ReplaceAll(topic.Query, " ", "+")

	var full struct {
		Total  int `json:"total"`
		Offset int `json:"offset"`
		Limit  int `json:"limit"`
		Hits   []struct {
			Rank   int    `json:"rank"`
			ShotID string `json:"shot_id"`
		} `json:"hits"`
	}
	doJSON(t, "GET", fmt.Sprintf("%s/api/v1/search?session=%s&q=%s&limit=%d", ts.URL, id, q, maxLimit),
		nil, http.StatusOK, &full)
	if full.Total < 4 {
		t.Skipf("topic too small to paginate (total=%d)", full.Total)
	}
	if full.Total != len(full.Hits) {
		t.Fatalf("total %d != hits %d at full depth", full.Total, len(full.Hits))
	}
	var page struct {
		Total  int `json:"total"`
		Offset int `json:"offset"`
		Limit  int `json:"limit"`
		Hits   []struct {
			Rank   int    `json:"rank"`
			ShotID string `json:"shot_id"`
		} `json:"hits"`
	}
	doJSON(t, "GET", fmt.Sprintf("%s/api/v1/search?session=%s&q=%s&offset=2&limit=2", ts.URL, id, q),
		nil, http.StatusOK, &page)
	if page.Total != full.Total {
		t.Errorf("page total = %d, want %d", page.Total, full.Total)
	}
	if len(page.Hits) != 2 || page.Offset != 2 || page.Limit != 2 {
		t.Fatalf("page = %+v", page)
	}
	for i, h := range page.Hits {
		if h.Rank != i+2 {
			t.Errorf("hit %d rank = %d, want %d", i, h.Rank, i+2)
		}
		if h.ShotID != full.Hits[i+2].ShotID {
			t.Errorf("page hit %d = %s, full hit = %s", i, h.ShotID, full.Hits[i+2].ShotID)
		}
	}
	// Offset past the end: empty page, total intact.
	doJSON(t, "GET", fmt.Sprintf("%s/api/v1/search?session=%s&q=%s&offset=100000", ts.URL, id, q),
		nil, http.StatusOK, &page)
	if len(page.Hits) != 0 || page.Total != full.Total {
		t.Errorf("past-end page = %+v", page)
	}
}

func TestSearchStreamNDJSON(t *testing.T) {
	ts, arch, _ := newTestServer(t)
	id := createSession(t, ts, map[string]any{})
	topic := arch.Truth.SearchTopics[0]
	url := fmt.Sprintf("%s/api/v1/search/stream?session=%s&q=%s&limit=5", ts.URL, id,
		strings.ReplaceAll(topic.Query, " ", "+"))
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d", resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); ct != "application/x-ndjson" {
		t.Errorf("content type = %q", ct)
	}
	sc := bufio.NewScanner(resp.Body)
	hits, summaries := 0, 0
	for sc.Scan() {
		var line struct {
			Type  string          `json:"type"`
			Hit   json.RawMessage `json:"hit"`
			Total int             `json:"total"`
		}
		if err := json.Unmarshal(sc.Bytes(), &line); err != nil {
			t.Fatalf("bad NDJSON line %q: %v", sc.Text(), err)
		}
		switch line.Type {
		case "hit":
			if summaries > 0 {
				t.Error("hit after summary")
			}
			if len(line.Hit) == 0 {
				t.Error("hit line without hit object")
			}
			hits++
		case "summary":
			summaries++
			if line.Total < hits {
				t.Errorf("summary total %d < streamed hits %d", line.Total, hits)
			}
		default:
			t.Errorf("unknown line type %q", line.Type)
		}
	}
	if err := sc.Err(); err != nil {
		t.Fatal(err)
	}
	if hits == 0 || summaries != 1 {
		t.Errorf("stream: %d hits, %d summaries", hits, summaries)
	}
	// Unknown session gets the envelope, not a stream.
	wantEnvelope(t, "GET", ts.URL+"/api/v1/search/stream?session=ghost&q=x", nil,
		http.StatusNotFound, "not_found")
}

func TestSearchValidation(t *testing.T) {
	ts, _, _ := newTestServer(t)
	wantEnvelope(t, "GET", ts.URL+"/api/v1/search?q=x", nil, http.StatusBadRequest, "invalid_request")
	wantEnvelope(t, "GET", ts.URL+"/api/v1/search?session=ghost&q=x", nil, http.StatusNotFound, "not_found")
	id := createSession(t, ts, map[string]any{})
	wantEnvelope(t, "GET", ts.URL+"/api/v1/search?session="+id+"&q=x&limit=0", nil, http.StatusBadRequest, "invalid_request")
	wantEnvelope(t, "GET", ts.URL+"/api/v1/search?session="+id+"&q=x&limit=abc", nil, http.StatusBadRequest, "invalid_request")
	wantEnvelope(t, "GET", ts.URL+"/api/v1/search?session="+id+"&q=x&offset=-1", nil, http.StatusBadRequest, "invalid_request")
	wantEnvelope(t, "GET", ts.URL+"/api/v1/search?session="+id+"&q=x&limit=1001", nil, http.StatusBadRequest, "invalid_request")
}

func TestEventsValidation(t *testing.T) {
	ts, _, _ := newTestServer(t)
	id := createSession(t, ts, map[string]any{})
	wantEnvelope(t, "POST", ts.URL+"/api/v1/events", map[string]any{"session_id": id},
		http.StatusBadRequest, "invalid_request")
	wantEnvelope(t, "POST", ts.URL+"/api/v1/events",
		map[string]any{"session_id": "ghost", "events": []map[string]any{{"action": "browse"}}},
		http.StatusNotFound, "not_found")
	// Invalid event inside the batch.
	wantEnvelope(t, "POST", ts.URL+"/api/v1/events",
		map[string]any{"session_id": id, "events": []map[string]any{
			{"action": "rate", "shot": "x", "value": 7},
		}}, http.StatusBadRequest, "invalid_request")
}

func TestSearchCategoryFacet(t *testing.T) {
	ts, arch, _ := newTestServer(t)
	id := createSession(t, ts, map[string]any{})
	topic := arch.Truth.SearchTopics[0]
	var res struct {
		Hits []struct {
			Category string `json:"category"`
		} `json:"hits"`
	}
	url := fmt.Sprintf("%s/api/v1/search?session=%s&q=%s&cat=%s", ts.URL, id,
		strings.ReplaceAll(topic.Query, " ", "+"), topic.Category.String())
	doJSON(t, "GET", url, nil, http.StatusOK, &res)
	for _, h := range res.Hits {
		if h.Category != topic.Category.String() {
			t.Fatalf("facet leaked category %q", h.Category)
		}
	}
	wantEnvelope(t, "GET",
		fmt.Sprintf("%s/api/v1/search?session=%s&q=x&cat=astrology", ts.URL, id),
		nil, http.StatusBadRequest, "invalid_request")
}

func TestShotMetadata(t *testing.T) {
	ts, arch, _ := newTestServer(t)
	shotID := string(arch.Collection.ShotIDs()[0])
	var shot struct {
		ShotID     string  `json:"shot_id"`
		Title      string  `json:"title"`
		Seconds    float64 `json:"seconds"`
		Transcript string  `json:"transcript"`
		Keyframes  int     `json:"keyframes"`
	}
	doJSON(t, "GET", ts.URL+"/api/v1/shots/"+shotID, nil, http.StatusOK, &shot)
	if shot.ShotID != shotID || shot.Seconds <= 0 || shot.Transcript == "" || shot.Keyframes == 0 {
		t.Errorf("shot = %+v", shot)
	}
	wantEnvelope(t, "GET", ts.URL+"/api/v1/shots/nope", nil, http.StatusNotFound, "not_found")
}

// TestLegacyRedirect: the unversioned paths answer 308 with the /api/v1
// location (query preserved), so old clients keep working.
func TestLegacyRedirect(t *testing.T) {
	ts, _, _ := newTestServer(t)
	for _, tc := range []struct {
		method, path, wantLoc string
	}{
		{"GET", "/api/healthz", "/api/v1/healthz"},
		{"POST", "/api/sessions", "/api/v1/sessions"},
		{"GET", "/api/search?session=s1&q=cup+final", "/api/v1/search?session=s1&q=cup+final"},
		{"GET", "/api/shots/v0001_s001", "/api/v1/shots/v0001_s001"},
		{"POST", "/api/events", "/api/v1/events"},
	} {
		req, _ := http.NewRequest(tc.method, ts.URL+tc.path, nil)
		resp, err := noRedirectClient.Do(req)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusPermanentRedirect {
			t.Errorf("%s %s: status %d, want 308", tc.method, tc.path, resp.StatusCode)
			continue
		}
		if loc := resp.Header.Get("Location"); loc != tc.wantLoc {
			t.Errorf("%s %s: location %q, want %q", tc.method, tc.path, loc, tc.wantLoc)
		}
	}
	// A legacy client that follows redirects transparently completes
	// the old create-session call against the new route.
	resp, err := http.Post(ts.URL+"/api/sessions", "application/json", strings.NewReader("{}"))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusCreated {
		t.Errorf("redirected create: status %d, want 201", resp.StatusCode)
	}
}

func TestUnknownRouteEnvelope(t *testing.T) {
	ts, _, _ := newTestServer(t)
	wantEnvelope(t, "GET", ts.URL+"/api/v1/nope", nil, http.StatusNotFound, "not_found")
	wantEnvelope(t, "GET", ts.URL+"/elsewhere", nil, http.StatusNotFound, "not_found")
}

// TestCatchAllRouteLabelsBounded is the regression test for catch-all
// label normalization: arbitrary request paths — unmatched, legacy
// /api/..., unknown /api/v1/... — must collapse onto the fixed
// "* /api/" and "* /" telemetry labels instead of minting one metrics
// route per path. The distributed RPC mux has the matching test in
// internal/distrib.
func TestCatchAllRouteLabelsBounded(t *testing.T) {
	ts, _, srv := newTestServer(t)
	get := func(path string) {
		t.Helper()
		req, err := http.NewRequest("GET", ts.URL+path, nil)
		if err != nil {
			t.Fatal(err)
		}
		resp, err := noRedirectClient.Do(req)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
	}
	for i := 0; i < 20; i++ {
		get(fmt.Sprintf("/random/path%d", i))      // unmatched -> "* /"
		get(fmt.Sprintf("/api/legacy%d", i))       // 308 redirect -> "* /api/"
		get(fmt.Sprintf("/api/v1/unknown%d", i))   // unknown v1 -> "* /api/"
		get(fmt.Sprintf("/healthz-imposter%d", i)) // unmatched -> "* /"
	}
	snap := srv.Metrics().TakeSnapshot()
	allowed := map[string]bool{routeLegacy: true, routeUnmatched: true}
	for _, pattern := range []string{
		"POST /api/v1/sessions", "GET /api/v1/sessions", "GET /api/v1/sessions/{id}",
		"DELETE /api/v1/sessions/{id}", "GET /api/v1/search", "GET /api/v1/search/stream",
		"POST /api/v1/events", "GET /api/v1/shots/{id}", "GET /api/v1/healthz", "GET /api/v1/metrics",
		"GET /api/v1/debug/traces", "GET /metrics",
		"GET /api/v1/admin/topology", "POST /api/v1/admin/topology",
	} {
		allowed[pattern] = true
	}
	for route := range snap.Routes {
		if !allowed[route] {
			t.Errorf("unexpected metrics route label %q — per-route metrics exploded", route)
		}
	}
	if n := snap.Routes[routeUnmatched].Count; n != 40 {
		t.Errorf("%q count = %d, want 40", routeUnmatched, n)
	}
	if n := snap.Routes[routeLegacy].Count; n != 40 {
		t.Errorf("%q count = %d, want 40", routeLegacy, n)
	}
}

func TestSessionTTLOverHTTP(t *testing.T) {
	arch, err := synth.Generate(synth.TinyConfig(), 7)
	if err != nil {
		t.Fatal(err)
	}
	sys, err := core.NewSystemFromCollection(arch.Collection, core.Config{})
	if err != nil {
		t.Fatal(err)
	}
	// The fake clock is read from handler goroutines; guard it.
	var mu sync.Mutex
	now := time.Unix(1_300_000_000, 0)
	nowFn := func() time.Time {
		mu.Lock()
		defer mu.Unlock()
		return now
	}
	mgr, err := core.NewSessionManager(sys, core.ManagerOptions{TTL: time.Minute, Now: nowFn})
	if err != nil {
		t.Fatal(err)
	}
	defer mgr.Close()
	srv, err := NewServer(sys, WithSessionManager(mgr))
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	id := createSession(t, ts, map[string]any{})
	doJSON(t, "GET", ts.URL+"/api/v1/sessions/"+id, nil, http.StatusOK, nil)
	mu.Lock()
	now = now.Add(2 * time.Minute)
	mu.Unlock()
	wantEnvelope(t, "GET", ts.URL+"/api/v1/sessions/"+id, nil, http.StatusNotFound, "not_found")
}

func TestPanicRecovery(t *testing.T) {
	arch, err := synth.Generate(synth.TinyConfig(), 7)
	if err != nil {
		t.Fatal(err)
	}
	sys, err := core.NewSystemFromCollection(arch.Collection, core.Config{})
	if err != nil {
		t.Fatal(err)
	}
	srv, err := NewServer(sys)
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	// Wrap a panicking handler in the server's middleware chain.
	h := srv.withMiddleware(http.HandlerFunc(func(http.ResponseWriter, *http.Request) {
		panic("kaboom")
	}))
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest("GET", "/api/v1/healthz", nil))
	if rec.Code != http.StatusInternalServerError {
		t.Fatalf("status = %d, want 500", rec.Code)
	}
	var env struct {
		Error struct {
			Code string `json:"code"`
		} `json:"error"`
	}
	if err := json.Unmarshal(rec.Body.Bytes(), &env); err != nil || env.Error.Code != "internal" {
		t.Fatalf("panic body = %q (%v)", rec.Body.String(), err)
	}
}

func TestConcurrentSessions(t *testing.T) {
	ts, arch, _ := newTestServer(t)
	topic := arch.Truth.SearchTopics[0]
	done := make(chan error, 8)
	for i := 0; i < 8; i++ {
		go func() {
			done <- func() error {
				var created struct {
					SessionID string `json:"session_id"`
				}
				data, _ := json.Marshal(map[string]any{})
				resp, err := http.Post(ts.URL+"/api/v1/sessions", "application/json", bytes.NewReader(data))
				if err != nil {
					return err
				}
				defer resp.Body.Close()
				if err := json.NewDecoder(resp.Body).Decode(&created); err != nil {
					return err
				}
				url := fmt.Sprintf("%s/api/v1/search?session=%s&q=%s", ts.URL, created.SessionID,
					strings.ReplaceAll(topic.Query, " ", "+"))
				for j := 0; j < 5; j++ {
					r, err := http.Get(url)
					if err != nil {
						return err
					}
					r.Body.Close()
					if r.StatusCode != http.StatusOK {
						return fmt.Errorf("search status %d", r.StatusCode)
					}
				}
				return nil
			}()
		}()
	}
	for i := 0; i < 8; i++ {
		if err := <-done; err != nil {
			t.Fatal(err)
		}
	}
}

func TestNewServerNil(t *testing.T) {
	if _, err := NewServer(nil); err == nil {
		t.Error("nil system accepted")
	}
}

func TestListSessions(t *testing.T) {
	ts, arch, _ := newTestServer(t)
	var ids []string
	for i := 0; i < 5; i++ {
		ids = append(ids, createSession(t, ts, map[string]any{}))
	}
	// Give one session some state so the listing has something to show.
	q := strings.ReplaceAll(arch.Truth.SearchTopics[0].Query, " ", "+")
	doJSON(t, "GET", fmt.Sprintf("%s/api/v1/search?session=%s&q=%s", ts.URL, ids[0], q), nil, http.StatusOK, nil)

	var list struct {
		Total    int `json:"total"`
		Offset   int `json:"offset"`
		Limit    int `json:"limit"`
		Sessions []struct {
			SessionID   string  `json:"session_id"`
			IdleSeconds float64 `json:"idle_seconds"`
			Step        int     `json:"step"`
			LastQuery   string  `json:"last_query"`
		} `json:"sessions"`
	}
	doJSON(t, "GET", ts.URL+"/api/v1/sessions", nil, http.StatusOK, &list)
	if list.Total != 5 || len(list.Sessions) != 5 {
		t.Fatalf("list = total %d, %d entries, want 5/5", list.Total, len(list.Sessions))
	}
	stepped := 0
	for _, e := range list.Sessions {
		if e.Step > 0 {
			stepped++
			if e.LastQuery == "" {
				t.Errorf("session %s has step %d but no last query", e.SessionID, e.Step)
			}
		}
	}
	if stepped != 1 {
		t.Errorf("%d sessions with steps, want 1", stepped)
	}

	// Pagination windows the sorted listing without overlap.
	var page1, page2 struct {
		Total    int `json:"total"`
		Sessions []struct {
			SessionID string `json:"session_id"`
		} `json:"sessions"`
	}
	doJSON(t, "GET", ts.URL+"/api/v1/sessions?limit=3", nil, http.StatusOK, &page1)
	doJSON(t, "GET", ts.URL+"/api/v1/sessions?offset=3&limit=3", nil, http.StatusOK, &page2)
	if len(page1.Sessions) != 3 || len(page2.Sessions) != 2 {
		t.Fatalf("pages = %d + %d entries, want 3 + 2", len(page1.Sessions), len(page2.Sessions))
	}
	seen := map[string]bool{}
	for _, e := range append(page1.Sessions, page2.Sessions...) {
		if seen[e.SessionID] {
			t.Errorf("session %s appears in both pages", e.SessionID)
		}
		seen[e.SessionID] = true
	}

	// Bad pagination parameters use the shared validation.
	wantEnvelope(t, "GET", ts.URL+"/api/v1/sessions?offset=-1", nil, http.StatusBadRequest, "invalid_request")
	wantEnvelope(t, "GET", ts.URL+"/api/v1/sessions?limit=9999", nil, http.StatusBadRequest, "invalid_request")

	// Deleting a session removes it from the listing.
	doJSON(t, "DELETE", ts.URL+"/api/v1/sessions/"+ids[2], nil, http.StatusNoContent, nil)
	doJSON(t, "GET", ts.URL+"/api/v1/sessions", nil, http.StatusOK, &list)
	if list.Total != 4 {
		t.Errorf("total after delete = %d, want 4", list.Total)
	}
}

func TestMetricsEndpoint(t *testing.T) {
	ts, arch, _ := newTestServer(t)
	id := createSession(t, ts, map[string]any{})
	q := strings.ReplaceAll(arch.Truth.SearchTopics[0].Query, " ", "+")
	for i := 0; i < 3; i++ {
		doJSON(t, "GET", fmt.Sprintf("%s/api/v1/search?session=%s&q=%s", ts.URL, id, q), nil, http.StatusOK, nil)
	}
	wantEnvelope(t, "GET", ts.URL+"/api/v1/shots/nope", nil, http.StatusNotFound, "not_found")

	var m struct {
		UptimeSeconds float64 `json:"uptime_seconds"`
		InFlight      int64   `json:"in_flight"`
		Totals        struct {
			Requests  int64 `json:"requests"`
			Errors4xx int64 `json:"errors_4xx"`
		} `json:"totals"`
		Routes map[string]struct {
			Count   int64            `json:"count"`
			Status  map[string]int64 `json:"status"`
			Latency struct {
				Count uint64  `json:"count"`
				P50MS float64 `json:"p50_ms"`
				P95MS float64 `json:"p95_ms"`
				P99MS float64 `json:"p99_ms"`
				MaxMS float64 `json:"max_ms"`
			} `json:"latency"`
		} `json:"routes"`
		Sessions struct {
			Live    int   `json:"live"`
			Created int64 `json:"created"`
		} `json:"sessions"`
	}
	doJSON(t, "GET", ts.URL+"/api/v1/metrics", nil, http.StatusOK, &m)

	search := m.Routes["GET /api/v1/search"]
	if search.Count != 3 || search.Status["200"] != 3 {
		t.Errorf("search route = %+v, want 3x 200", search)
	}
	if search.Latency.Count != 3 || search.Latency.MaxMS <= 0 {
		t.Errorf("search latency = %+v", search.Latency)
	}
	if search.Latency.P50MS > search.Latency.P99MS || search.Latency.P99MS > search.Latency.MaxMS*1.1 {
		t.Errorf("latency quantiles out of order: %+v", search.Latency)
	}
	shots := m.Routes["GET /api/v1/shots/{id}"]
	if shots.Status["404"] != 1 {
		t.Errorf("shots route = %+v, want one 404", shots)
	}
	if m.Totals.Errors4xx != 1 {
		t.Errorf("totals = %+v, want one 4xx", m.Totals)
	}
	if m.Sessions.Created != 1 || m.Sessions.Live != 1 {
		t.Errorf("sessions = %+v", m.Sessions)
	}
	if m.InFlight != 1 { // this very /metrics request is in flight
		t.Errorf("in_flight = %d, want 1", m.InFlight)
	}
	if m.UptimeSeconds < 0 {
		t.Errorf("uptime = %v", m.UptimeSeconds)
	}
	// Error responses land in the same route's status table.
	srvURL := ts.URL
	wantEnvelope(t, "GET", srvURL+"/api/v1/search?session="+id, nil, http.StatusBadRequest, "invalid_request")
	doJSON(t, "GET", srvURL+"/api/v1/metrics", nil, http.StatusOK, &m)
	if got := m.Routes["GET /api/v1/search"].Status["400"]; got != 1 {
		t.Errorf("search 400 count = %d, want 1", got)
	}
}

// TestMetricsSearchSection covers the retrieval-engine block of
// /api/v1/metrics: cache hit/miss/entry counters and per-segment
// fan-out timing, plus the normalized "<method> <pattern>" style of
// the catch-all route labels.
func TestMetricsSearchSection(t *testing.T) {
	arch, err := synth.Generate(synth.TinyConfig(), 31)
	if err != nil {
		t.Fatal(err)
	}
	sys, err := core.NewSystemFromCollection(arch.Collection, core.Config{
		UseImplicit: true, Segments: 3, SearchWorkers: 2, CacheSize: 32,
	})
	if err != nil {
		t.Fatal(err)
	}
	srv, err := NewServer(sys)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { srv.Close() })
	ts := httptest.NewServer(srv.Handler())
	t.Cleanup(ts.Close)

	id := createSession(t, ts, map[string]any{})
	q := strings.ReplaceAll(arch.Truth.SearchTopics[0].Query, " ", "+")
	// Same session, same query, no new evidence: second call must hit.
	doJSON(t, "GET", fmt.Sprintf("%s/api/v1/search?session=%s&q=%s", ts.URL, id, q), nil, http.StatusOK, nil)
	doJSON(t, "GET", fmt.Sprintf("%s/api/v1/search?session=%s&q=%s", ts.URL, id, q), nil, http.StatusOK, nil)
	// Exercise the catch-alls for the label check.
	doJSON(t, "GET", ts.URL+"/api/sessions", nil, http.StatusPermanentRedirect, nil)
	wantEnvelope(t, "GET", ts.URL+"/nope", nil, http.StatusNotFound, "not_found")

	var m struct {
		Routes map[string]struct {
			Count int64 `json:"count"`
		} `json:"routes"`
		Search struct {
			Cache struct {
				Enabled  bool    `json:"enabled"`
				Hits     int64   `json:"hits"`
				Misses   int64   `json:"misses"`
				Entries  int     `json:"entries"`
				Capacity int     `json:"capacity"`
				HitRatio float64 `json:"hit_ratio"`
			} `json:"cache"`
			Segments []struct {
				Segment  int   `json:"segment"`
				Docs     int   `json:"docs"`
				Searches int64 `json:"searches"`
				Latency  struct {
					Count uint64 `json:"count"`
				} `json:"latency"`
			} `json:"segments"`
			Workers int `json:"workers"`
		} `json:"search"`
	}
	doJSON(t, "GET", ts.URL+"/api/v1/metrics", nil, http.StatusOK, &m)

	c := m.Search.Cache
	if !c.Enabled || c.Capacity != 32 {
		t.Errorf("cache block = %+v", c)
	}
	if c.Misses != 1 || c.Hits != 1 || c.Entries != 1 {
		t.Errorf("cache counters = %+v, want 1 miss, 1 hit, 1 entry", c)
	}
	if c.HitRatio != 0.5 {
		t.Errorf("hit ratio = %v, want 0.5", c.HitRatio)
	}
	if len(m.Search.Segments) != 3 || m.Search.Workers != 2 {
		t.Fatalf("segments = %+v workers = %d", m.Search.Segments, m.Search.Workers)
	}
	docs := 0
	for i, seg := range m.Search.Segments {
		if seg.Segment != i || seg.Searches == 0 || seg.Latency.Count == 0 {
			t.Errorf("segment %d = %+v, want scored with timing", i, seg)
		}
		docs += seg.Docs
	}
	if docs != arch.Collection.NumShots() {
		t.Errorf("segment docs sum to %d, want %d", docs, arch.Collection.NumShots())
	}
	if m.Routes[routeLegacy].Count == 0 {
		t.Errorf("legacy catch-all not recorded under %q; routes: %v", routeLegacy, keysOf(m.Routes))
	}
	if m.Routes[routeUnmatched].Count == 0 {
		t.Errorf("unmatched catch-all not recorded under %q", routeUnmatched)
	}
}

func keysOf[V any](m map[string]V) []string {
	out := make([]string, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	return out
}
