package webapi

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"net/http/httptest"
	"testing"

	"repro/internal/metrics"
	"repro/internal/overload"
)

// getWithDeadline performs a GET carrying an X-IVR-Deadline header.
func getWithDeadline(t *testing.T, url, deadline string) *http.Response {
	t.Helper()
	req, err := http.NewRequest("GET", url, nil)
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set(overload.DeadlineHeader, deadline)
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	return resp
}

// wantRespEnvelope asserts the uniform error body on an already-made
// response (the header-carrying requests wantEnvelope cannot make).
func wantRespEnvelope(t *testing.T, resp *http.Response, wantStatus int, wantCode string) {
	t.Helper()
	defer resp.Body.Close()
	if resp.StatusCode != wantStatus {
		t.Fatalf("status %d, want %d", resp.StatusCode, wantStatus)
	}
	var env struct {
		Error struct {
			Code    string `json:"code"`
			Message string `json:"message"`
		} `json:"error"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&env); err != nil {
		t.Fatalf("decode envelope: %v", err)
	}
	if env.Error.Code != wantCode || env.Error.Message == "" {
		t.Fatalf("envelope = %+v, want code %q with message", env, wantCode)
	}
}

// TestSearchDeadlineHeader pins the serve tier's deadline protocol on
// the search surface: a spent inbound budget answers the typed 504
// before any session or parameter work, a malformed one is a 400, and
// a live one serves the page.
func TestSearchDeadlineHeader(t *testing.T) {
	ts, _, srv := newTestServer(t)
	id := createSession(t, ts, nil)
	searchURL := ts.URL + "/api/v1/search?session=" + id + "&q=goal"

	for _, v := range []string{"0", "-40"} {
		wantRespEnvelope(t, getWithDeadline(t, searchURL, v), http.StatusGatewayTimeout, codeDeadline)
	}
	if n := srv.deadline.Load(); n != 2 {
		t.Errorf("deadline_exceeded counter = %d after 2 spent budgets, want 2", n)
	}

	for _, v := range []string{"bogus", "+250", "600001"} {
		wantRespEnvelope(t, getWithDeadline(t, searchURL, v), http.StatusBadRequest, codeInvalid)
	}

	resp := getWithDeadline(t, searchURL, "5000")
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("live-budget search: status %d, want 200", resp.StatusCode)
	}

	// The stream surface runs the same gate.
	wantRespEnvelope(t, getWithDeadline(t, ts.URL+"/api/v1/search/stream?session="+id+"&q=goal", "0"),
		http.StatusGatewayTimeout, codeDeadline)
}

// TestSearchShedEnvelope pins the serve tier's admission refusal: with
// the sole concurrency slot held, searches shed as typed 429s with
// Retry-After, and admit again the moment the slot frees.
func TestSearchShedEnvelope(t *testing.T) {
	ts, _, srv := newTestServer(t, WithAdmission(metrics.AdmissionConfig{
		InitialLimit: 1, MinLimit: 1, MaxQueue: 0,
	}))
	id := createSession(t, ts, nil)
	searchURL := ts.URL + "/api/v1/search?session=" + id + "&q=goal"

	ticket, err := srv.gate.Acquire(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Get(searchURL)
	if err != nil {
		t.Fatal(err)
	}
	if ra := resp.Header.Get("Retry-After"); ra == "" {
		t.Error("shed response missing Retry-After")
	}
	wantRespEnvelope(t, resp, http.StatusTooManyRequests, codeOverloaded)

	ticket.Release()
	doJSON(t, "GET", searchURL, nil, http.StatusOK, nil)
	if st := srv.gate.Stats(); st.Shed != 1 {
		t.Errorf("gate shed count = %d, want 1", st.Shed)
	}
}

// TestSearchErrMapping pins the non-2xx vocabulary of the search error
// mapper: a client hangup is the typed 499 — never a generic 500 — and
// a spent budget is the typed 504, from either the local sentinel or a
// lower tier's context error.
func TestSearchErrMapping(t *testing.T) {
	_, _, srv := newTestServer(t)
	cases := []struct {
		err        error
		wantStatus int
		wantCode   string
	}{
		{context.Canceled, statusClientClosed, codeCanceled},
		{fmt.Errorf("scatter: %w", context.Canceled), statusClientClosed, codeCanceled},
		{overload.ErrDeadlineExceeded, http.StatusGatewayTimeout, codeDeadline},
		{context.DeadlineExceeded, http.StatusGatewayTimeout, codeDeadline},
		{errors.New("disk on fire"), http.StatusInternalServerError, codeInternal},
	}
	for _, tc := range cases {
		rec := httptest.NewRecorder()
		srv.writeSearchErr(rec, tc.err, "sess")
		resp := rec.Result()
		wantRespEnvelope(t, resp, tc.wantStatus, tc.wantCode)
	}
}
