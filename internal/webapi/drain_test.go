package webapi

import (
	"net/http"
	"net/url"
	"testing"

	"repro/internal/sessionstore"
)

func TestDrainRespondsRetryAfter(t *testing.T) {
	store := sessionstore.NewMemoryStore()
	ts, arch, srv := newTestServer(t, WithSessionStore(store), WithReplicaID("r1"))
	id := createSession(t, ts, nil)
	q := arch.Truth.SearchTopics[0].Query

	// Healthy replica: replica ID on every response, healthz "ok".
	var hz struct {
		Status   string `json:"status"`
		Replica  string `json:"replica"`
		Draining bool   `json:"draining"`
	}
	resp := doJSON(t, "GET", ts.URL+"/api/v1/healthz", nil, http.StatusOK, &hz)
	if hz.Status != "ok" || hz.Replica != "r1" || hz.Draining {
		t.Fatalf("healthz before drain = %+v", hz)
	}
	if got := resp.Header.Get(ReplicaHeader); got != "r1" {
		t.Fatalf("%s = %q, want r1", ReplicaHeader, got)
	}

	flushed, err := srv.BeginDrain()
	if err != nil {
		t.Fatal(err)
	}
	if flushed != 1 {
		t.Fatalf("BeginDrain flushed %d sessions, want 1", flushed)
	}

	// Session-touching routes answer 503 + Retry-After + "draining".
	req, err := http.NewRequest("GET", ts.URL+"/api/v1/search?session="+id+"&q="+url.QueryEscape(q), nil)
	if err != nil {
		t.Fatal(err)
	}
	r, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer r.Body.Close()
	if r.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("search while draining: status %d", r.StatusCode)
	}
	if r.Header.Get("Retry-After") == "" {
		t.Fatal("draining 503 without Retry-After")
	}
	wantEnvelope(t, "POST", ts.URL+"/api/v1/sessions", map[string]any{}, http.StatusServiceUnavailable, codeDraining)

	// Liveness flips to draining but stays 200 (the probe is how the
	// router learns, not an error path).
	doJSON(t, "GET", ts.URL+"/api/v1/healthz", nil, http.StatusOK, &hz)
	if hz.Status != "draining" || !hz.Draining {
		t.Fatalf("healthz after drain = %+v", hz)
	}

	// The flushed session is in the store, adoptable by a sibling.
	if _, err := store.Get(id); err != nil {
		t.Fatalf("drained session not in store: %v", err)
	}
}
