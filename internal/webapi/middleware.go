package webapi

import (
	"context"
	"log/slog"
	"net/http"
	"strings"
	"time"

	"repro/internal/metrics"
	"repro/internal/trace"
)

// RequestIDHeader carries the request correlation ID. Incoming values
// are honoured (so a front-end can stitch its own traces); otherwise
// the server mints one. The response always echoes it. Shared with the
// trace package: the same ID correlates the span trees of every tier a
// request crosses.
const RequestIDHeader = trace.RequestIDHeader

// ReplicaHeader names the replica that served a response. Set on
// every response when the server was given a replica ID, so clients
// and the front tier can observe session affinity and failover.
const ReplicaHeader = "X-IVR-Replica"

type ctxKey int

const requestIDKey ctxKey = 0

// RequestID returns the correlation ID of an in-flight request (""
// outside the middleware chain).
func RequestID(ctx context.Context) string {
	id, _ := ctx.Value(requestIDKey).(string)
	return id
}

// instrument wraps one route's handler with the registry's per-route
// telemetry (metrics.Instrument reuses the middleware's StatusRecorder
// so the chain adds no extra wrapper allocation). The same helper
// instruments the distributed RPC mux, so both surfaces normalise
// their catch-all labels the same way.
func (s *Server) instrument(pattern string, h http.HandlerFunc) http.HandlerFunc {
	return s.metrics.Instrument(pattern, h)
}

// skipTrace reports paths not worth a trace-ring slot: health probes,
// metrics scrapes, and the trace ring itself would otherwise drown the
// query traces operators come for.
func skipTrace(path string) bool {
	return path == "/api/v1/healthz" ||
		path == "/api/v1/metrics" ||
		path == distribMetricsAlias ||
		strings.HasPrefix(path, "/api/v1/debug/")
}

// distribMetricsAlias mirrors distrib.MetricsAliasPath without the
// import (webapi must not depend on the RPC package).
const distribMetricsAlias = "/metrics"

// withMiddleware wraps next with the server's standard chain:
// request-ID propagation, per-request tracing, request logging, and
// panic recovery into a 500 error envelope.
//
// Tracing implements the serve side of the trace header contract (see
// package trace): every non-skipped request is traced into the
// collector under the request's correlation ID, and when the caller
// sent "X-IVR-Trace: 1" the finished span tree is serialised into the
// same response header just before the headers flush.
func (s *Server) withMiddleware(next http.Handler) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		reqID := r.Header.Get(RequestIDHeader)
		if reqID == "" {
			reqID = trace.NewID()
		}
		w.Header().Set(RequestIDHeader, reqID)
		if s.replicaID != "" {
			w.Header().Set(ReplicaHeader, s.replicaID)
		}
		r = r.WithContext(context.WithValue(r.Context(), requestIDKey, reqID))

		rec := metrics.NewStatusRecorder(w)
		var tr *trace.Trace
		if !skipTrace(r.URL.Path) {
			t, root := trace.New(reqID, trace.TierServe, r.Method+" "+r.URL.Path)
			tr = t
			r = r.WithContext(trace.NewContext(r.Context(), t, root))
			if r.Header.Get(trace.Header) == trace.RequestEcho {
				// The tree must be on the wire before the headers flush;
				// the hook runs at the last settable moment and encodes a
				// stamped snapshot of the still-open tree.
				rec.SetBeforeWrite(func() {
					rec.Header().Set(trace.Header, trace.EncodeSpan(t.SnapshotRoot()))
				})
			}
		}
		start := time.Now()
		defer func() {
			if p := recover(); p != nil {
				s.log.Error("panic serving request",
					"request_id", reqID, "method", r.Method, "path", r.URL.Path, "panic", p)
				// Headers may already be out; writeCode is then a no-op
				// on the status but the connection is torn down by the
				// deferred write error anyway.
				if rec.Status() == 0 {
					writeCode(rec, http.StatusInternalServerError, codeInternal, "internal error")
				}
			} else {
				s.log.Log(r.Context(), slog.LevelInfo, "request",
					"request_id", reqID, "method", r.Method, "path", r.URL.Path,
					"status", rec.Status(), "duration", time.Since(start))
			}
			// Handlers that never wrote still owe the caller its echo.
			rec.FireBeforeWrite()
			s.tracer.Finish(tr)
		}()
		next.ServeHTTP(rec, r)
	})
}
