package webapi

import (
	"context"
	"crypto/rand"
	"encoding/hex"
	"log/slog"
	"net/http"
	"time"
)

// RequestIDHeader carries the request correlation ID. Incoming values
// are honoured (so a front-end can stitch its own traces); otherwise
// the server mints one. The response always echoes it.
const RequestIDHeader = "X-Request-Id"

type ctxKey int

const requestIDKey ctxKey = 0

// RequestID returns the correlation ID of an in-flight request (""
// outside the middleware chain).
func RequestID(ctx context.Context) string {
	id, _ := ctx.Value(requestIDKey).(string)
	return id
}

// newRequestID mints a 64-bit random correlation ID.
func newRequestID() string {
	var b [8]byte
	if _, err := rand.Read(b[:]); err != nil {
		return "r0"
	}
	return "r" + hex.EncodeToString(b[:])
}

// statusRecorder captures the status code for the request log.
type statusRecorder struct {
	http.ResponseWriter
	status int
}

func (r *statusRecorder) WriteHeader(code int) {
	r.status = code
	r.ResponseWriter.WriteHeader(code)
}

func (r *statusRecorder) Write(p []byte) (int, error) {
	if r.status == 0 {
		r.status = http.StatusOK
	}
	return r.ResponseWriter.Write(p)
}

// Flush forwards streaming flushes (the NDJSON endpoint needs it).
func (r *statusRecorder) Flush() {
	if f, ok := r.ResponseWriter.(http.Flusher); ok {
		f.Flush()
	}
}

// instrument wraps one route's handler with telemetry: the route's
// request counter (by status), its latency histogram, and the global
// in-flight gauge. It reuses the outer middleware's statusRecorder
// when present so the chain adds no extra wrapper allocation.
func (s *Server) instrument(pattern string, h http.HandlerFunc) http.HandlerFunc {
	rs := s.metrics.Route(pattern)
	return func(w http.ResponseWriter, r *http.Request) {
		rec, ok := w.(*statusRecorder)
		if !ok {
			rec = &statusRecorder{ResponseWriter: w}
			w = rec
		}
		done := s.metrics.IncInFlight()
		start := time.Now()
		finished := false
		defer func() {
			done()
			status := rec.status
			if status == 0 {
				if finished {
					// The handler returned without writing; net/http
					// will send 200 with an empty body.
					status = http.StatusOK
				} else {
					// Unwinding a panic; the recovery middleware turns
					// it into a 500 after this records.
					status = http.StatusInternalServerError
				}
			}
			rs.Observe(status, time.Since(start))
		}()
		h(w, r)
		finished = true
	}
}

// withMiddleware wraps next with the server's standard chain:
// request-ID propagation, request logging, and panic recovery into a
// 500 error envelope.
func (s *Server) withMiddleware(next http.Handler) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		reqID := r.Header.Get(RequestIDHeader)
		if reqID == "" {
			reqID = newRequestID()
		}
		w.Header().Set(RequestIDHeader, reqID)
		r = r.WithContext(context.WithValue(r.Context(), requestIDKey, reqID))

		rec := &statusRecorder{ResponseWriter: w}
		start := time.Now()
		defer func() {
			if p := recover(); p != nil {
				s.log.Error("panic serving request",
					"request_id", reqID, "method", r.Method, "path", r.URL.Path, "panic", p)
				// Headers may already be out; writeCode is then a no-op
				// on the status but the connection is torn down by the
				// deferred write error anyway.
				if rec.status == 0 {
					writeCode(rec, http.StatusInternalServerError, codeInternal, "internal error")
				}
				return
			}
			s.log.Log(r.Context(), slog.LevelInfo, "request",
				"request_id", reqID, "method", r.Method, "path", r.URL.Path,
				"status", rec.status, "duration", time.Since(start))
		}()
		next.ServeHTTP(rec, r)
	})
}
