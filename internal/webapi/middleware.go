package webapi

import (
	"context"
	"crypto/rand"
	"encoding/hex"
	"log/slog"
	"net/http"
	"time"

	"repro/internal/metrics"
)

// RequestIDHeader carries the request correlation ID. Incoming values
// are honoured (so a front-end can stitch its own traces); otherwise
// the server mints one. The response always echoes it.
const RequestIDHeader = "X-Request-Id"

// ReplicaHeader names the replica that served a response. Set on
// every response when the server was given a replica ID, so clients
// and the front tier can observe session affinity and failover.
const ReplicaHeader = "X-IVR-Replica"

type ctxKey int

const requestIDKey ctxKey = 0

// RequestID returns the correlation ID of an in-flight request (""
// outside the middleware chain).
func RequestID(ctx context.Context) string {
	id, _ := ctx.Value(requestIDKey).(string)
	return id
}

// newRequestID mints a 64-bit random correlation ID.
func newRequestID() string {
	var b [8]byte
	if _, err := rand.Read(b[:]); err != nil {
		return "r0"
	}
	return "r" + hex.EncodeToString(b[:])
}

// instrument wraps one route's handler with the registry's per-route
// telemetry (metrics.Instrument reuses the middleware's StatusRecorder
// so the chain adds no extra wrapper allocation). The same helper
// instruments the distributed RPC mux, so both surfaces normalise
// their catch-all labels the same way.
func (s *Server) instrument(pattern string, h http.HandlerFunc) http.HandlerFunc {
	return s.metrics.Instrument(pattern, h)
}

// withMiddleware wraps next with the server's standard chain:
// request-ID propagation, request logging, and panic recovery into a
// 500 error envelope.
func (s *Server) withMiddleware(next http.Handler) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		reqID := r.Header.Get(RequestIDHeader)
		if reqID == "" {
			reqID = newRequestID()
		}
		w.Header().Set(RequestIDHeader, reqID)
		if s.replicaID != "" {
			w.Header().Set(ReplicaHeader, s.replicaID)
		}
		r = r.WithContext(context.WithValue(r.Context(), requestIDKey, reqID))

		rec := metrics.NewStatusRecorder(w)
		start := time.Now()
		defer func() {
			if p := recover(); p != nil {
				s.log.Error("panic serving request",
					"request_id", reqID, "method", r.Method, "path", r.URL.Path, "panic", p)
				// Headers may already be out; writeCode is then a no-op
				// on the status but the connection is torn down by the
				// deferred write error anyway.
				if rec.Status() == 0 {
					writeCode(rec, http.StatusInternalServerError, codeInternal, "internal error")
				}
				return
			}
			s.log.Log(r.Context(), slog.LevelInfo, "request",
				"request_id", reqID, "method", r.Method, "path", r.URL.Path,
				"status", rec.Status(), "duration", time.Since(start))
		}()
		next.ServeHTTP(rec, r)
	})
}
