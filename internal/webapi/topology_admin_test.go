package webapi

import (
	"context"
	"encoding/json"
	"errors"
	"io"
	"net/http"
	"strings"
	"testing"

	"repro/internal/retrieval"
)

// stubTopoAdmin records ApplyTopology calls and scripts their outcome.
type stubTopoAdmin struct {
	applied [][]byte
	err     error
	view    map[string]any
}

func (s *stubTopoAdmin) ApplyTopology(_ context.Context, descriptor []byte) error {
	if s.err != nil {
		return s.err
	}
	s.applied = append(s.applied, append([]byte(nil), descriptor...))
	return nil
}

func (s *stubTopoAdmin) DescribeTopology() any { return s.view }

func TestTopologyAdminEndpoint(t *testing.T) {
	stub := &stubTopoAdmin{view: map[string]any{"segments": float64(4)}}
	ts, _, _ := newTestServer(t, WithTopologyAdmin(stub))

	// GET serves whatever the admin describes.
	var got map[string]any
	doJSON(t, "GET", ts.URL+"/api/v1/admin/topology", nil, http.StatusOK, &got)
	if got["segments"] != float64(4) {
		t.Fatalf("GET view = %v", got)
	}

	// A POST the admin accepts echoes the (post-reload) view back and
	// delivers the exact descriptor bytes.
	desc := `{"version":1,"groups":[{"replicas":["http://a:1"]}]}`
	resp, err := http.Post(ts.URL+"/api/v1/admin/topology", "application/json", strings.NewReader(desc))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("accepted POST status = %d", resp.StatusCode)
	}
	if len(stub.applied) != 1 || string(stub.applied[0]) != desc {
		t.Fatalf("admin saw %q", stub.applied)
	}

	// A rejected descriptor surfaces as a 400 envelope with the typed
	// error's text.
	stub.err = errors.New("distrib: topology mismatches running cluster")
	resp2, err := http.Post(ts.URL+"/api/v1/admin/topology", "application/json", strings.NewReader(desc))
	if err != nil {
		t.Fatal(err)
	}
	defer resp2.Body.Close()
	if resp2.StatusCode != http.StatusBadRequest {
		t.Fatalf("rejected POST status = %d, want 400", resp2.StatusCode)
	}
	var env struct {
		Error struct {
			Code    string `json:"code"`
			Message string `json:"message"`
		} `json:"error"`
	}
	if err := json.NewDecoder(resp2.Body).Decode(&env); err != nil {
		t.Fatal(err)
	}
	if env.Error.Code != codeInvalid || !strings.Contains(env.Error.Message, "mismatches") {
		t.Fatalf("envelope = %+v", env)
	}

	// A descriptor over the 1 MiB cap is refused before the admin ever
	// sees it.
	stub.err = nil
	huge := strings.Repeat(" ", maxTopologyBody+1)
	resp3, err := http.Post(ts.URL+"/api/v1/admin/topology", "application/json", strings.NewReader(huge))
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp3.Body)
	resp3.Body.Close()
	if resp3.StatusCode != http.StatusRequestEntityTooLarge {
		t.Fatalf("oversize POST status = %d, want 413", resp3.StatusCode)
	}
	if len(stub.applied) != 1 {
		t.Fatalf("oversize descriptor reached the admin (%d applies)", len(stub.applied))
	}
}

func TestTopologyAdminUnconfigured(t *testing.T) {
	ts, _, _ := newTestServer(t)
	for _, m := range []string{"GET", "POST"} {
		req, err := http.NewRequest(m, ts.URL+"/api/v1/admin/topology", strings.NewReader("{}"))
		if err != nil {
			t.Fatal(err)
		}
		resp, err := http.DefaultClient.Do(req)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusNotFound {
			t.Errorf("%s without admin wired: status %d, want 404", m, resp.StatusCode)
		}
	}
}

// TestPrometheusBackendFamilies: when the retrieval snapshot reports
// backends, the scrape body carries the hedge/failover/health families
// (the CI chaos smoke greps for ivr_rpc_hedge_total).
func TestPrometheusBackendFamilies(t *testing.T) {
	ts, _, srv := newTestServer(t)
	srv.sys.SetBackendTelemetry(func() []retrieval.BackendSummary {
		return []retrieval.BackendSummary{{Addr: "http://seg1:1", Healthy: true, Hedges: 3, Failovers: 1}}
	})
	resp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	raw, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	body := string(raw)
	for _, want := range []string{
		`ivr_backend_healthy{backend="http://seg1:1"} 1`,
		`ivr_rpc_hedge_total{backend="http://seg1:1"} 3`,
		`ivr_rpc_failover_total{backend="http://seg1:1"} 1`,
		"ivr_probe_failures_total",
	} {
		if !strings.Contains(body, want) {
			t.Errorf("scrape missing %q", want)
		}
	}
}
