package metrics

import (
	"context"
	"errors"
	"sync"
	"time"
)

// ErrShed is returned by Admission.Acquire when the concurrency limit
// is reached and the bounded wait queue is full: the tier refuses the
// work *now*, while it is still cheap, instead of queueing unboundedly
// and timing everything out later. Callers translate it into a typed
// 429 + Retry-After envelope.
var ErrShed = errors.New("metrics: admission limit reached, request shed")

// AdmissionConfig sizes an Admission gate.
type AdmissionConfig struct {
	// InitialLimit is the starting concurrency limit (default 64).
	InitialLimit int
	// MinLimit/MaxLimit clamp the adaptive limit (defaults 4 and 4096).
	MinLimit int
	MaxLimit int
	// MaxQueue bounds how many callers may wait for a slot; one past
	// the queue is shed immediately (default 0: shed at the limit).
	MaxQueue int
	// Target is the latency the AIMD controller steers toward:
	// releases slower than Target shrink the limit multiplicatively,
	// faster ones grow it additively. Zero disables adaptation (the
	// limit stays at InitialLimit).
	Target time.Duration
	// Now is the clock (nil = time.Now) — injected by tests so limit
	// adaptation is deterministic.
	Now func() time.Time
}

// Admission is an adaptive concurrency gate: at most `limit` requests
// in flight, a small bounded FIFO queue absorbing bursts, and an AIMD
// controller moving the limit with measured latency. Safe for
// concurrent use; the uncontended Acquire/Release pair is one mutex
// round trip each, nothing on the scoring path.
type Admission struct {
	cfg AdmissionConfig

	mu       sync.Mutex
	limit    float64
	inflight int
	waiters  []chan struct{}
	lastCut  time.Time

	admitted int64
	queued   int64
	shed     int64
	aborted  int64 // queue waits abandoned (caller context ended)
}

// NewAdmission builds a gate from cfg, applying defaults.
func NewAdmission(cfg AdmissionConfig) *Admission {
	if cfg.InitialLimit <= 0 {
		cfg.InitialLimit = 64
	}
	if cfg.MinLimit <= 0 {
		cfg.MinLimit = 4
	}
	if cfg.MaxLimit <= 0 {
		cfg.MaxLimit = 4096
	}
	if cfg.MinLimit > cfg.MaxLimit {
		cfg.MinLimit = cfg.MaxLimit
	}
	if cfg.InitialLimit < cfg.MinLimit {
		cfg.InitialLimit = cfg.MinLimit
	}
	if cfg.InitialLimit > cfg.MaxLimit {
		cfg.InitialLimit = cfg.MaxLimit
	}
	if cfg.MaxQueue < 0 {
		cfg.MaxQueue = 0
	}
	if cfg.Now == nil {
		cfg.Now = time.Now
	}
	return &Admission{cfg: cfg, limit: float64(cfg.InitialLimit)}
}

// Ticket is one admitted request; Release must be called exactly once.
type Ticket struct {
	a     *Admission
	start time.Time
}

// Acquire admits the caller, queues it (bounded) when the tier is at
// its limit, or sheds it with ErrShed. A queued caller whose context
// ends first gets the context error back and never occupies a slot.
func (a *Admission) Acquire(ctx context.Context) (*Ticket, error) {
	a.mu.Lock()
	if a.inflight < int(a.limit) {
		a.inflight++
		a.admitted++
		start := a.cfg.Now()
		a.mu.Unlock()
		return &Ticket{a: a, start: start}, nil
	}
	if len(a.waiters) >= a.cfg.MaxQueue {
		a.shed++
		a.mu.Unlock()
		return nil, ErrShed
	}
	grant := make(chan struct{}, 1)
	a.waiters = append(a.waiters, grant)
	a.queued++
	a.mu.Unlock()

	select {
	case <-grant:
		a.mu.Lock()
		start := a.cfg.Now()
		a.mu.Unlock()
		return &Ticket{a: a, start: start}, nil
	case <-ctx.Done():
		a.mu.Lock()
		for i, w := range a.waiters {
			if w == grant {
				a.waiters = append(a.waiters[:i], a.waiters[i+1:]...)
				a.aborted++
				a.mu.Unlock()
				return nil, ctx.Err()
			}
		}
		a.mu.Unlock()
		// The grant raced the cancellation: the slot is ours, give it
		// back so it is not leaked.
		<-grant
		a.release(0, false)
		return nil, ctx.Err()
	}
}

// Release returns the slot and feeds the measured latency to the AIMD
// controller: a release slower than Target shrinks the limit, an
// on-target one grows it.
func (t *Ticket) Release() {
	t.a.release(t.a.cfg.Now().Sub(t.start), true)
}

func (a *Admission) release(latency time.Duration, measured bool) {
	a.mu.Lock()
	defer a.mu.Unlock()
	if measured && a.cfg.Target > 0 {
		if latency > a.cfg.Target {
			// Multiplicative decrease, at most once per Target window so
			// one slow burst does not collapse the limit to the floor.
			now := a.cfg.Now()
			if now.Sub(a.lastCut) >= a.cfg.Target {
				a.lastCut = now
				a.limit *= 0.9
				if a.limit < float64(a.cfg.MinLimit) {
					a.limit = float64(a.cfg.MinLimit)
				}
			}
		} else {
			// Additive increase: one full slot per limit's worth of
			// on-target releases.
			a.limit += 1 / a.limit
			if a.limit > float64(a.cfg.MaxLimit) {
				a.limit = float64(a.cfg.MaxLimit)
			}
		}
	}
	a.inflight--
	// Hand freed capacity to the queue head (FIFO).
	for a.inflight < int(a.limit) && len(a.waiters) > 0 {
		grant := a.waiters[0]
		a.waiters = a.waiters[1:]
		a.inflight++
		a.admitted++
		grant <- struct{}{}
	}
}

// AdmissionStats is a point-in-time snapshot for telemetry surfaces.
type AdmissionStats struct {
	// Limit is the current adaptive concurrency limit.
	Limit int `json:"limit"`
	// InFlight is the number of admitted requests not yet released.
	InFlight int `json:"in_flight"`
	// Queued is the current wait-queue depth.
	Queued int `json:"queued"`
	// Admitted counts requests that got a slot (immediately or after
	// queueing); Shed counts typed rejections; Aborted counts queue
	// waits abandoned by their caller.
	Admitted int64 `json:"admitted"`
	Shed     int64 `json:"shed"`
	Aborted  int64 `json:"aborted"`
}

// Stats snapshots the gate.
func (a *Admission) Stats() AdmissionStats {
	a.mu.Lock()
	defer a.mu.Unlock()
	return AdmissionStats{
		Limit:    int(a.limit),
		InFlight: a.inflight,
		Queued:   len(a.waiters),
		Admitted: a.admitted,
		Shed:     a.shed,
		Aborted:  a.aborted,
	}
}

// WriteAdmissionPrometheus appends the ivr_admission_* families for
// one gate to a scrape (families are present even at zero, so
// dashboards and the CI smoke can assert on them unconditionally).
func WriteAdmissionPrometheus(p *PromWriter, s AdmissionStats) {
	p.Family("ivr_admission_limit", "gauge")
	p.Sample("ivr_admission_limit", float64(s.Limit))
	p.Family("ivr_admission_in_flight", "gauge")
	p.Sample("ivr_admission_in_flight", float64(s.InFlight))
	p.Family("ivr_admission_queue_depth", "gauge")
	p.Sample("ivr_admission_queue_depth", float64(s.Queued))
	p.Family("ivr_admission_admitted_total", "counter")
	p.Sample("ivr_admission_admitted_total", float64(s.Admitted))
	p.Family("ivr_admission_shed_total", "counter")
	p.Sample("ivr_admission_shed_total", float64(s.Shed))
	p.Family("ivr_admission_aborted_total", "counter")
	p.Sample("ivr_admission_aborted_total", float64(s.Aborted))
}
