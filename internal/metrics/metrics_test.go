package metrics

import (
	"fmt"
	"math"
	"sync"
	"testing"
	"time"
)

func TestBucketIndexMonotone(t *testing.T) {
	prev := -1
	for us := uint64(0); us < 1<<20; us += 97 {
		idx := bucketIndex(us)
		if idx < prev {
			t.Fatalf("bucketIndex not monotone at %dus: %d < %d", us, idx, prev)
		}
		if idx >= numBuckets {
			t.Fatalf("bucketIndex out of range at %dus: %d", us, idx)
		}
		prev = idx
	}
}

func TestBucketMidWithinRelativeError(t *testing.T) {
	for _, us := range []uint64{1, 15, 16, 17, 100, 999, 12345, 1_000_000, 60_000_000} {
		mid := bucketMid(bucketIndex(us))
		rel := math.Abs(mid-float64(us)) / float64(us)
		if rel > 1.0/subBuckets {
			t.Fatalf("bucketMid(%dus)=%v, relative error %.3f > %.3f", us, mid, rel, 1.0/subBuckets)
		}
	}
}

func TestHistogramQuantiles(t *testing.T) {
	var h Histogram
	// Uniform 1..1000 ms.
	for i := 1; i <= 1000; i++ {
		h.Observe(time.Duration(i) * time.Millisecond)
	}
	s := h.Summary()
	if s.Count != 1000 {
		t.Fatalf("count = %d, want 1000", s.Count)
	}
	checks := []struct {
		got, want float64
	}{
		{s.P50MS, 500}, {s.P95MS, 950}, {s.P99MS, 990}, {s.MeanMS, 500.5}, {s.MaxMS, 1000},
	}
	for i, c := range checks {
		if math.Abs(c.got-c.want)/c.want > 0.08 {
			t.Errorf("check %d: got %.1fms, want ~%.1fms", i, c.got, c.want)
		}
	}
}

func TestHistogramMerge(t *testing.T) {
	var a, b, whole Histogram
	for i := 1; i <= 500; i++ {
		a.Observe(time.Duration(i) * time.Millisecond)
		whole.Observe(time.Duration(i) * time.Millisecond)
	}
	for i := 501; i <= 1000; i++ {
		b.Observe(time.Duration(i) * time.Millisecond)
		whole.Observe(time.Duration(i) * time.Millisecond)
	}
	a.Merge(&b)
	am, wm := a.Summary(), whole.Summary()
	if am != wm {
		t.Fatalf("merged summary %+v != whole summary %+v", am, wm)
	}
}

func TestHistogramZeroAndNegative(t *testing.T) {
	var h Histogram
	h.Observe(0)
	h.Observe(-time.Second)
	if h.Count() != 2 {
		t.Fatalf("count = %d, want 2", h.Count())
	}
	if s := h.Summary(); s.MaxMS != 0 {
		t.Fatalf("max = %v, want 0", s.MaxMS)
	}
}

// TestConcurrentRecording hammers one registry from many goroutines
// under -race: concurrent observes on shared routes, route creation,
// in-flight flips, and snapshots.
func TestConcurrentRecording(t *testing.T) {
	g := NewRegistry()
	const workers = 32
	const perWorker = 2000
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			shared := g.Route("GET /shared")
			own := g.Route(fmt.Sprintf("GET /own/%d", w%8))
			for i := 0; i < perWorker; i++ {
				done := g.IncInFlight()
				status := 200
				if i%50 == 0 {
					status = 404
				}
				if i%100 == 0 {
					status = 500
				}
				d := time.Duration(i%997) * time.Microsecond
				shared.Observe(status, d)
				own.Observe(200, d)
				done()
				if i%500 == 0 {
					_ = g.TakeSnapshot()
				}
			}
		}(w)
	}
	wg.Wait()

	snap := g.TakeSnapshot()
	if snap.InFlight != 0 {
		t.Fatalf("in-flight = %d after all done", snap.InFlight)
	}
	shared := snap.Routes["GET /shared"]
	if shared.Count != workers*perWorker {
		t.Fatalf("shared count = %d, want %d", shared.Count, workers*perWorker)
	}
	var statusSum int64
	for _, n := range shared.Status {
		statusSum += n
	}
	if statusSum != shared.Count {
		t.Fatalf("status sum %d != count %d", statusSum, shared.Count)
	}
	if shared.Latency.Count != uint64(shared.Count) {
		t.Fatalf("latency count %d != route count %d", shared.Latency.Count, shared.Count)
	}
	if snap.Totals.Requests != 2*workers*perWorker {
		t.Fatalf("total requests = %d, want %d", snap.Totals.Requests, 2*workers*perWorker)
	}
	wantErr5 := int64(workers * perWorker / 100)
	if snap.Totals.Errors5xx != wantErr5 {
		t.Fatalf("5xx = %d, want %d", snap.Totals.Errors5xx, wantErr5)
	}
}

func TestInFlightGaugeIdempotentDone(t *testing.T) {
	g := NewRegistry()
	done := g.IncInFlight()
	if g.InFlight() != 1 {
		t.Fatalf("in-flight = %d, want 1", g.InFlight())
	}
	done()
	done() // second call must not double-decrement
	if g.InFlight() != 0 {
		t.Fatalf("in-flight = %d, want 0", g.InFlight())
	}
}

func BenchmarkRouteObserve(b *testing.B) {
	g := NewRegistry()
	rs := g.Route("GET /bench")
	b.ReportAllocs()
	b.RunParallel(func(pb *testing.PB) {
		for pb.Next() {
			rs.Observe(200, 123*time.Microsecond)
		}
	})
}
