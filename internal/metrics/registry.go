package metrics

import (
	"sort"
	"strconv"
	"sync"
	"sync/atomic"
	"time"
)

// statusSlots bounds the per-route status-code table (codes 100..699
// map to slots 0..599; anything outside clamps into the table edges).
const (
	statusBase  = 100
	statusSlots = 600
)

// RouteStats accumulates telemetry for one route pattern. All methods
// are lock-free; safe for concurrent use.
type RouteStats struct {
	count   atomic.Int64
	status  [statusSlots]atomic.Int64
	latency Histogram
}

// Observe records one completed request on the route.
func (r *RouteStats) Observe(status int, d time.Duration) {
	r.count.Add(1)
	slot := status - statusBase
	if slot < 0 {
		slot = 0
	}
	if slot >= statusSlots {
		slot = statusSlots - 1
	}
	r.status[slot].Add(1)
	r.latency.Observe(d)
}

// Count returns the total requests observed on the route.
func (r *RouteStats) Count() int64 { return r.count.Load() }

// Registry is the server-wide telemetry root: per-route stats, an
// in-flight request gauge, and the process start time. Route creation
// takes a write lock once per pattern; the steady state is an RLock
// map read plus atomic adds.
type Registry struct {
	mu       sync.RWMutex
	routes   map[string]*RouteStats
	inFlight atomic.Int64
	start    time.Time
}

// NewRegistry builds an empty registry.
func NewRegistry() *Registry {
	return &Registry{routes: make(map[string]*RouteStats), start: time.Now()}
}

// Route returns the stats bucket for a route pattern, creating it on
// first use. Handlers should capture the result once at registration
// time rather than re-resolving per request.
func (g *Registry) Route(pattern string) *RouteStats {
	g.mu.RLock()
	rs := g.routes[pattern]
	g.mu.RUnlock()
	if rs != nil {
		return rs
	}
	g.mu.Lock()
	defer g.mu.Unlock()
	if rs = g.routes[pattern]; rs == nil {
		rs = &RouteStats{}
		g.routes[pattern] = rs
	}
	return rs
}

// IncInFlight marks one request as started and returns a func marking
// it finished.
func (g *Registry) IncInFlight() func() {
	g.inFlight.Add(1)
	var once sync.Once
	return func() { once.Do(func() { g.inFlight.Add(-1) }) }
}

// InFlight reports the number of requests currently being served.
func (g *Registry) InFlight() int64 { return g.inFlight.Load() }

// RouteSnapshot is one route's JSON form.
type RouteSnapshot struct {
	Count int64 `json:"count"`
	// Status maps status code ("200") to request count.
	Status  map[string]int64 `json:"status"`
	Latency LatencySummary   `json:"latency"`
}

// Totals aggregates across routes.
type Totals struct {
	Requests  int64 `json:"requests"`
	Errors4xx int64 `json:"errors_4xx"`
	Errors5xx int64 `json:"errors_5xx"`
}

// Snapshot is the registry's JSON form: the /api/v1/metrics schema
// (the serving layer adds session-table stats alongside it).
type Snapshot struct {
	UptimeSeconds float64                  `json:"uptime_seconds"`
	InFlight      int64                    `json:"in_flight"`
	Totals        Totals                   `json:"totals"`
	Routes        map[string]RouteSnapshot `json:"routes"`
}

// TakeSnapshot captures the registry. Concurrent recording continues;
// the snapshot is a consistent-enough point-in-time view (per-counter
// atomicity, no torn values).
func (g *Registry) TakeSnapshot() Snapshot {
	g.mu.RLock()
	patterns := make([]string, 0, len(g.routes))
	for p := range g.routes {
		patterns = append(patterns, p)
	}
	sort.Strings(patterns)
	stats := make([]*RouteStats, len(patterns))
	for i, p := range patterns {
		stats[i] = g.routes[p]
	}
	g.mu.RUnlock()

	snap := Snapshot{
		UptimeSeconds: time.Since(g.start).Seconds(),
		InFlight:      g.inFlight.Load(),
		Routes:        make(map[string]RouteSnapshot, len(patterns)),
	}
	for i, p := range patterns {
		rs := stats[i]
		r := RouteSnapshot{
			Count:   rs.count.Load(),
			Status:  make(map[string]int64),
			Latency: rs.latency.Summary(),
		}
		for slot := range rs.status {
			n := rs.status[slot].Load()
			if n == 0 {
				continue
			}
			code := slot + statusBase
			r.Status[strconv.Itoa(code)] = n
			switch {
			case code >= 500:
				snap.Totals.Errors5xx += n
			case code >= 400:
				snap.Totals.Errors4xx += n
			}
		}
		snap.Totals.Requests += r.Count
		snap.Routes[p] = r
	}
	return snap
}
