package metrics

import (
	"net/http"
	"time"
)

// StatusRecorder captures the response status code for request
// telemetry and logging. It forwards Flush so streaming handlers keep
// working behind it.
type StatusRecorder struct {
	http.ResponseWriter
	status      int
	beforeWrite func()
}

// NewStatusRecorder wraps w. If w already is a *StatusRecorder it is
// returned as-is, so middleware chains add at most one wrapper.
func NewStatusRecorder(w http.ResponseWriter) *StatusRecorder {
	if rec, ok := w.(*StatusRecorder); ok {
		return rec
	}
	return &StatusRecorder{ResponseWriter: w}
}

// Status returns the recorded status code (0 before any write).
func (r *StatusRecorder) Status() int { return r.status }

// SetBeforeWrite registers fn to run once, immediately before the
// response header is flushed (explicit WriteHeader or the implicit
// 200 on first Write) — the last moment a response header can still
// be set. The tracing middleware uses it to echo the in-flight span
// tree; anything needing a late header fits the same hook.
func (r *StatusRecorder) SetBeforeWrite(fn func()) { r.beforeWrite = fn }

// FireBeforeWrite runs a pending SetBeforeWrite hook now. Idempotent;
// middleware calls it after the handler returns to cover handlers
// that never wrote (net/http flushes their header afterwards, so a
// header set here still lands).
func (r *StatusRecorder) FireBeforeWrite() {
	if fn := r.beforeWrite; fn != nil {
		r.beforeWrite = nil
		fn()
	}
}

// WriteHeader implements http.ResponseWriter.
func (r *StatusRecorder) WriteHeader(code int) {
	r.FireBeforeWrite()
	r.status = code
	r.ResponseWriter.WriteHeader(code)
}

// Write implements http.ResponseWriter.
func (r *StatusRecorder) Write(p []byte) (int, error) {
	if r.status == 0 {
		r.FireBeforeWrite()
		r.status = http.StatusOK
	}
	return r.ResponseWriter.Write(p)
}

// Flush forwards streaming flushes (NDJSON endpoints need it).
func (r *StatusRecorder) Flush() {
	if f, ok := r.ResponseWriter.(http.Flusher); ok {
		f.Flush()
	}
}

// Instrument wraps one route's handler with telemetry: the route's
// request counter (by status), its latency histogram, and the
// registry's in-flight gauge. The pattern is the telemetry label —
// callers MUST pass a fixed route pattern ("GET /api/v1/search",
// "* /rpc/"), never a request path, or per-route metrics explode on
// arbitrary request paths. It reuses an outer StatusRecorder when one
// is already installed so a middleware chain adds no extra wrapper.
func (g *Registry) Instrument(pattern string, h http.HandlerFunc) http.HandlerFunc {
	rs := g.Route(pattern)
	return func(w http.ResponseWriter, r *http.Request) {
		rec := NewStatusRecorder(w)
		done := g.IncInFlight()
		start := time.Now()
		finished := false
		defer func() {
			done()
			status := rec.status
			if status == 0 {
				if finished {
					// The handler returned without writing; net/http
					// will send 200 with an empty body.
					status = http.StatusOK
				} else {
					// Unwinding a panic; any recovery middleware turns
					// it into a 500 after this records.
					status = http.StatusInternalServerError
				}
			}
			rs.Observe(status, time.Since(start))
		}()
		h(rec, r)
		finished = true
	}
}
