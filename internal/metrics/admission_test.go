package metrics

import (
	"context"
	"errors"
	"sync"
	"testing"
	"time"
)

func TestAdmissionImmediateAndShed(t *testing.T) {
	a := NewAdmission(AdmissionConfig{InitialLimit: 2, MinLimit: 1, MaxQueue: 1})
	ctx := context.Background()
	t1, err := a.Acquire(ctx)
	if err != nil {
		t.Fatal(err)
	}
	t2, err := a.Acquire(ctx)
	if err != nil {
		t.Fatal(err)
	}
	// Third caller queues (slot 3 over limit 2, queue cap 1)...
	grantErr := make(chan error, 1)
	var t3 *Ticket
	var t3mu sync.Mutex
	go func() {
		tk, err := a.Acquire(ctx)
		t3mu.Lock()
		t3 = tk
		t3mu.Unlock()
		grantErr <- err
	}()
	waitQueued(t, a, 1)
	// ...and the fourth is shed, typed.
	if _, err := a.Acquire(ctx); !errors.Is(err, ErrShed) {
		t.Fatalf("4th acquire err = %v, want ErrShed", err)
	}
	// Releasing a slot grants the queued waiter FIFO.
	t1.Release()
	if err := <-grantErr; err != nil {
		t.Fatalf("queued acquire: %v", err)
	}
	t2.Release()
	t3mu.Lock()
	t3.Release()
	t3mu.Unlock()
	s := a.Stats()
	if s.InFlight != 0 || s.Queued != 0 {
		t.Fatalf("gate not drained: %+v", s)
	}
	if s.Admitted != 3 || s.Shed != 1 {
		t.Fatalf("admitted=%d shed=%d, want 3/1", s.Admitted, s.Shed)
	}
}

func waitQueued(t *testing.T, a *Admission, n int) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for a.Stats().Queued < n {
		if time.Now().After(deadline) {
			t.Fatalf("queue never reached %d: %+v", n, a.Stats())
		}
	}
}

func TestAdmissionQueueAbandon(t *testing.T) {
	a := NewAdmission(AdmissionConfig{InitialLimit: 1, MinLimit: 1, MaxQueue: 4})
	tk, err := a.Acquire(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan error, 1)
	go func() {
		_, err := a.Acquire(ctx)
		done <- err
	}()
	waitQueued(t, a, 1)
	cancel()
	if err := <-done; !errors.Is(err, context.Canceled) {
		t.Fatalf("abandoned wait err = %v", err)
	}
	tk.Release()
	s := a.Stats()
	if s.InFlight != 0 || s.Queued != 0 || s.Aborted != 1 {
		t.Fatalf("after abandon: %+v", s)
	}
	// The gate still admits after the abandoned wait.
	tk2, err := a.Acquire(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	tk2.Release()
}

func TestAdmissionAIMD(t *testing.T) {
	now := time.Unix(0, 0)
	clock := func() time.Time { return now }
	a := NewAdmission(AdmissionConfig{
		InitialLimit: 100, MinLimit: 4, MaxLimit: 200,
		Target: 100 * time.Millisecond, Now: clock,
	})
	// Slow releases shrink the limit multiplicatively, at most once
	// per Target window.
	tk, _ := a.Acquire(context.Background())
	now = now.Add(500 * time.Millisecond) // latency 500ms > target
	tk.Release()
	if got := a.Stats().Limit; got != 90 {
		t.Fatalf("limit after one cut = %d, want 90", got)
	}
	// A second slow release inside the same window does not cut again.
	tk, _ = a.Acquire(context.Background())
	now = now.Add(50 * time.Millisecond)
	// Make the measured latency slow by moving start back: acquire
	// started at the current now, so advance past target.
	now = now.Add(200 * time.Millisecond)
	tk.Release()
	// lastCut was 750ms ago >= target, so this does cut: 90 -> 81.
	if got := a.Stats().Limit; got != 81 {
		t.Fatalf("limit after second cut = %d, want 81", got)
	}
	tk, _ = a.Acquire(context.Background())
	now = now.Add(150 * time.Millisecond)
	tk.Release() // within the same window as the last cut? 150ms >= 100ms target -> cuts again
	if got := a.Stats().Limit; got != 72 {
		t.Fatalf("limit after third cut = %d, want 72 (0.9*81=72.9)", got)
	}
	// Fast releases grow the limit additively.
	before := a.Stats().Limit
	for i := 0; i < 2000; i++ {
		tk, _ := a.Acquire(context.Background())
		tk.Release() // zero latency, on target
	}
	after := a.Stats().Limit
	if after <= before {
		t.Fatalf("limit did not grow under on-target load: %d -> %d", before, after)
	}
	if after > 200 {
		t.Fatalf("limit exceeded MaxLimit: %d", after)
	}
}

func TestAdmissionFloorAndStatic(t *testing.T) {
	now := time.Unix(0, 0)
	a := NewAdmission(AdmissionConfig{
		InitialLimit: 5, MinLimit: 4, MaxLimit: 10,
		Target: time.Millisecond, Now: func() time.Time { return now },
	})
	for i := 0; i < 50; i++ {
		tk, _ := a.Acquire(context.Background())
		now = now.Add(time.Hour)
		tk.Release()
	}
	if got := a.Stats().Limit; got != 4 {
		t.Fatalf("limit fell past MinLimit: %d", got)
	}
	// Target 0 = static limit: latency never moves it.
	st := NewAdmission(AdmissionConfig{InitialLimit: 7, Now: func() time.Time { return now }})
	tk, _ := st.Acquire(context.Background())
	now = now.Add(time.Hour)
	tk.Release()
	if got := st.Stats().Limit; got != 7 {
		t.Fatalf("static limit moved: %d", got)
	}
}
