package metrics

import (
	"fmt"
	"io"
	"sort"
	"strings"
)

// PrometheusContentType is the text exposition format version this
// package emits.
const PrometheusContentType = "text/plain; version=0.0.4; charset=utf-8"

// PromWriter renders Prometheus text exposition format (version
// 0.0.4): `# TYPE` lines, then samples with escaped label values. The
// first write error sticks; callers check Err once at the end instead
// of per line.
type PromWriter struct {
	w   io.Writer
	err error
}

// NewPromWriter wraps w.
func NewPromWriter(w io.Writer) *PromWriter { return &PromWriter{w: w} }

// Err returns the first write error, if any.
func (p *PromWriter) Err() error { return p.err }

// Family emits a `# TYPE name typ` line; call once per metric family
// before its samples.
func (p *PromWriter) Family(name, typ string) {
	if p.err != nil {
		return
	}
	_, p.err = fmt.Fprintf(p.w, "# TYPE %s %s\n", name, typ)
}

// Sample emits one sample line. kv is alternating label key, value
// pairs, rendered in argument order (stable output, no map iteration).
func (p *PromWriter) Sample(name string, v float64, kv ...string) {
	if p.err != nil {
		return
	}
	var b strings.Builder
	b.WriteString(name)
	if len(kv) > 0 {
		b.WriteByte('{')
		for i := 0; i+1 < len(kv); i += 2 {
			if i > 0 {
				b.WriteByte(',')
			}
			b.WriteString(kv[i])
			b.WriteString(`="`)
			b.WriteString(escapeLabel(kv[i+1]))
			b.WriteByte('"')
		}
		b.WriteByte('}')
	}
	// %g keeps integers integral and avoids exponent noise for the
	// magnitudes metrics take; Prometheus parses both forms.
	_, p.err = fmt.Fprintf(p.w, "%s %g\n", b.String(), v)
}

// escapeLabel escapes a label value per the exposition format.
func escapeLabel(v string) string {
	if !strings.ContainsAny(v, "\\\"\n") {
		return v
	}
	r := strings.NewReplacer(`\`, `\\`, `"`, `\"`, "\n", `\n`)
	return r.Replace(v)
}

// Summary emits one latency distribution as a Prometheus summary in
// seconds: quantile samples plus _sum and _count, sharing the label
// pairs in kv. The family `# TYPE <name> summary` line is the
// caller's (emit once, then one Summary per label set).
func (p *PromWriter) Summary(name string, s LatencySummary, kv ...string) {
	q := func(quant string, ms float64) {
		p.Sample(name, ms/1e3, append(append([]string{}, kv...), "quantile", quant)...)
	}
	q("0.5", s.P50MS)
	q("0.95", s.P95MS)
	q("0.99", s.P99MS)
	p.Sample(name+"_sum", s.MeanMS/1e3*float64(s.Count), kv...)
	p.Sample(name+"_count", float64(s.Count), kv...)
}

// WritePrometheus renders the registry in exposition format: the
// uptime/in-flight gauges, per-route+status request counters, and
// per-route latency summaries, all prefixed ivr_ and labelled with
// the process tier. The serving layers append their own families
// (sessions, cache, stages, replicas) to the same response.
func (g *Registry) WritePrometheus(w io.Writer, tier string) error {
	return WriteSnapshotPrometheus(w, g.TakeSnapshot(), tier)
}

// WriteSnapshotPrometheus renders an already-taken snapshot (the
// deeper tiers compose it into their own exposition handlers).
func WriteSnapshotPrometheus(w io.Writer, snap Snapshot, tier string) error {
	p := NewPromWriter(w)
	p.Family("ivr_tier_info", "gauge")
	p.Sample("ivr_tier_info", 1, "tier", tier)
	p.Family("ivr_uptime_seconds", "gauge")
	p.Sample("ivr_uptime_seconds", snap.UptimeSeconds)
	p.Family("ivr_in_flight", "gauge")
	p.Sample("ivr_in_flight", float64(snap.InFlight))

	routes := make([]string, 0, len(snap.Routes))
	for r := range snap.Routes {
		routes = append(routes, r)
	}
	sort.Strings(routes)

	p.Family("ivr_http_requests_total", "counter")
	for _, route := range routes {
		rs := snap.Routes[route]
		codes := make([]string, 0, len(rs.Status))
		for c := range rs.Status {
			codes = append(codes, c)
		}
		sort.Strings(codes)
		for _, code := range codes {
			p.Sample("ivr_http_requests_total", float64(rs.Status[code]),
				"route", route, "code", code)
		}
	}
	p.Family("ivr_http_request_duration_seconds", "summary")
	for _, route := range routes {
		p.Summary("ivr_http_request_duration_seconds", snap.Routes[route].Latency,
			"route", route)
	}
	return p.Err()
}
