package metrics

import (
	"net/http/httptest"
	"strings"
	"testing"
	"time"
)

func TestWritePrometheusExposition(t *testing.T) {
	g := NewRegistry()
	rs := g.Route("GET /api/v1/search")
	rs.Observe(200, 5*time.Millisecond)
	rs.Observe(200, 15*time.Millisecond)
	rs.Observe(404, 1*time.Millisecond)
	g.Route(`* /"odd\route`).Observe(500, time.Millisecond)

	var b strings.Builder
	if err := g.WritePrometheus(&b, "serve"); err != nil {
		t.Fatal(err)
	}
	out := b.String()

	for _, want := range []string{
		"# TYPE ivr_tier_info gauge",
		`ivr_tier_info{tier="serve"} 1`,
		"# TYPE ivr_uptime_seconds gauge",
		"# TYPE ivr_in_flight gauge",
		"ivr_in_flight 0",
		"# TYPE ivr_http_requests_total counter",
		`ivr_http_requests_total{route="GET /api/v1/search",code="200"} 2`,
		`ivr_http_requests_total{route="GET /api/v1/search",code="404"} 1`,
		`ivr_http_requests_total{route="* /\"odd\\route",code="500"} 1`,
		"# TYPE ivr_http_request_duration_seconds summary",
		`ivr_http_request_duration_seconds{route="GET /api/v1/search",quantile="0.5"}`,
		`ivr_http_request_duration_seconds{route="GET /api/v1/search",quantile="0.99"}`,
		`ivr_http_request_duration_seconds_count{route="GET /api/v1/search"} 3`,
	} {
		if !strings.Contains(out, want) {
			t.Fatalf("exposition missing %q:\n%s", want, out)
		}
	}
	// Basic format sanity: every non-comment line is `name{...} value`
	// or `name value`, and every family has exactly one TYPE line.
	types := 0
	for _, line := range strings.Split(strings.TrimSpace(out), "\n") {
		if strings.HasPrefix(line, "# TYPE ") {
			types++
			continue
		}
		if strings.HasPrefix(line, "#") {
			t.Fatalf("unexpected comment line %q", line)
		}
		if !strings.Contains(line, " ") {
			t.Fatalf("sample line without value: %q", line)
		}
	}
	if types != 5 {
		t.Fatalf("TYPE lines = %d, want 5:\n%s", types, out)
	}
}

func TestPromWriterSummarySum(t *testing.T) {
	var h Histogram
	for i := 0; i < 10; i++ {
		h.Observe(10 * time.Millisecond)
	}
	var b strings.Builder
	p := NewPromWriter(&b)
	p.Family("x_seconds", "summary")
	p.Summary("x_seconds", h.Summary(), "stage", "expand")
	if err := p.Err(); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	if !strings.Contains(out, `x_seconds_sum{stage="expand"} 0.1`) {
		t.Fatalf("sum mismatch (10 x 10ms = 0.1s):\n%s", out)
	}
	if !strings.Contains(out, `x_seconds_count{stage="expand"} 10`) {
		t.Fatalf("count mismatch:\n%s", out)
	}
}

func TestStatusRecorderBeforeWriteHook(t *testing.T) {
	// Explicit WriteHeader: hook fires first, once.
	rr := httptest.NewRecorder()
	rec := NewStatusRecorder(rr)
	fired := 0
	rec.SetBeforeWrite(func() {
		fired++
		rec.Header().Set("X-Late", "yes")
	})
	rec.WriteHeader(201)
	rec.Write([]byte("body"))
	rec.FireBeforeWrite()
	if fired != 1 {
		t.Fatalf("hook fired %d times", fired)
	}
	if rr.Header().Get("X-Late") != "yes" || rr.Code != 201 {
		t.Fatalf("late header lost: %+v code=%d", rr.Header(), rr.Code)
	}

	// Implicit header via first Write.
	rr = httptest.NewRecorder()
	rec = NewStatusRecorder(rr)
	fired = 0
	rec.SetBeforeWrite(func() {
		fired++
		rec.Header().Set("X-Late", "implicit")
	})
	rec.Write([]byte("body"))
	if fired != 1 || rr.Header().Get("X-Late") != "implicit" {
		t.Fatalf("implicit-write hook: fired=%d hdr=%q", fired, rr.Header().Get("X-Late"))
	}

	// Handler that never writes: middleware's FireBeforeWrite covers it.
	rr = httptest.NewRecorder()
	rec = NewStatusRecorder(rr)
	fired = 0
	rec.SetBeforeWrite(func() { fired++ })
	rec.FireBeforeWrite()
	rec.FireBeforeWrite()
	if fired != 1 {
		t.Fatalf("no-write hook fired %d times", fired)
	}

	// No hook set: writes pass through untouched.
	rr = httptest.NewRecorder()
	rec = NewStatusRecorder(rr)
	rec.Write([]byte("ok"))
	rec.FireBeforeWrite()
	if rr.Code != 200 || rr.Body.String() != "ok" {
		t.Fatalf("hookless recorder broke: %d %q", rr.Code, rr.Body.String())
	}
}
