package metrics

import (
	"sync"
	"testing"
	"time"
)

// Edge cases the quantile math must not trip over: no samples, one
// sample, and snapshots racing live recording.

func TestHistogramEmptyQuantiles(t *testing.T) {
	var h Histogram
	s := h.Summary()
	if s.Count != 0 || s.MeanMS != 0 || s.P50MS != 0 || s.P95MS != 0 || s.P99MS != 0 || s.MaxMS != 0 {
		t.Fatalf("empty summary not all-zero: %+v", s)
	}
	for _, q := range []float64{0, 0.5, 0.99, 1} {
		if d := h.Quantile(q); d != 0 {
			t.Fatalf("empty Quantile(%v) = %v, want 0", q, d)
		}
	}
}

func TestHistogramSingleSampleQuantiles(t *testing.T) {
	var h Histogram
	h.Observe(10 * time.Millisecond)
	s := h.Summary()
	if s.Count != 1 {
		t.Fatalf("count = %d", s.Count)
	}
	// Every quantile of a one-sample distribution is that sample, up
	// to the bucket's ~6% relative error.
	for name, got := range map[string]float64{
		"p50": s.P50MS, "p95": s.P95MS, "p99": s.P99MS,
	} {
		if got < 9.0 || got > 11.0 {
			t.Fatalf("%s = %v ms, want ~10ms", name, got)
		}
	}
	if s.MaxMS != 10 || s.MeanMS != 10 {
		t.Fatalf("max/mean = %v/%v, want exact 10", s.MaxMS, s.MeanMS)
	}
	// Out-of-range q clamps rather than indexing past the buckets.
	if d := h.Quantile(-1); d <= 0 {
		t.Fatalf("Quantile(-1) = %v", d)
	}
	if d := h.Quantile(2); d <= 0 {
		t.Fatalf("Quantile(2) = %v", d)
	}
}

func TestHistogramZeroAndNegativeDurations(t *testing.T) {
	var h Histogram
	h.Observe(0)
	h.Observe(-5 * time.Second)
	s := h.Summary()
	if s.Count != 2 || s.MaxMS != 0 || s.P99MS != 0 {
		t.Fatalf("clamped summary %+v", s)
	}
}

// TestHistogramConcurrentRecordWhileSnapshot races writers against
// Summary/Quantile readers; -race is the assertion, plus monotone
// count sanity on what the snapshots observed.
func TestHistogramConcurrentRecordWhileSnapshot(t *testing.T) {
	var h Histogram
	const writers = 8
	const perWriter = 2000
	var wg sync.WaitGroup
	stop := make(chan struct{})
	wg.Add(1)
	go func() {
		defer wg.Done()
		var last uint64
		for {
			select {
			case <-stop:
				return
			default:
			}
			s := h.Summary()
			if s.Count < last {
				t.Errorf("snapshot count went backwards: %d -> %d", last, s.Count)
				return
			}
			last = s.Count
			h.Quantile(0.95)
		}
	}()
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < perWriter; i++ {
				h.Observe(time.Duration(w*i%5000) * time.Microsecond)
			}
		}(w)
	}
	// Writers run to completion, then the reader is released.
	wgWriters := writers * perWriter
	for h.Count() < uint64(wgWriters) {
		time.Sleep(time.Millisecond)
	}
	close(stop)
	wg.Wait()
	if got := h.Count(); got != uint64(wgWriters) {
		t.Fatalf("count = %d, want %d", got, wgWriters)
	}
	if s := h.Summary(); s.Count != uint64(wgWriters) || s.P95MS <= 0 {
		t.Fatalf("final summary %+v", s)
	}
}
