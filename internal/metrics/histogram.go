// Package metrics provides the telemetry substrate for serving and
// load-testing the retrieval system at scale: lock-free latency
// histograms, per-route request counters, and an in-flight gauge,
// snapshotted into a stable JSON schema served at /api/v1/metrics and
// consumed by cmd/ivrload.
//
// Everything on the hot path is a single atomic add: recording one
// request touches no mutex, so a thousand concurrent handlers (or a
// thousand load-generator workers, each owning a histogram shard)
// never serialize on telemetry.
package metrics

import (
	"math/bits"
	"sync/atomic"
	"time"
)

// Histogram bucket geometry: microsecond-resolution HDR-style
// log-linear buckets. Values below 2^subBits microseconds land in
// exact unit buckets; above that, each power-of-two octave is split
// into 2^subBits linear sub-buckets, bounding relative error at
// 1/2^subBits (~6%) across the full range (1µs .. ~75min), which is
// more than enough fidelity for p50/p95/p99 latency reporting.
const (
	subBits    = 4
	subBuckets = 1 << subBits // 16
	numBuckets = 48 << subBits
)

// bucketIndex maps a microsecond value to its bucket.
func bucketIndex(us uint64) int {
	if us < subBuckets {
		return int(us)
	}
	exp := bits.Len64(us) - 1 // position of the most significant bit, >= subBits
	idx := (exp-subBits+1)<<subBits + int((us>>(uint(exp)-subBits))&(subBuckets-1))
	if idx >= numBuckets {
		return numBuckets - 1
	}
	return idx
}

// bucketMid returns a representative (midpoint) microsecond value for
// a bucket, used when interpolating quantiles.
func bucketMid(idx int) float64 {
	if idx < subBuckets {
		return float64(idx)
	}
	octave := idx >> subBits // >= 1
	sub := idx & (subBuckets - 1)
	lower := uint64(subBuckets+sub) << (uint(octave) - 1)
	width := uint64(1) << (uint(octave) - 1)
	return float64(lower) + float64(width)/2
}

// Histogram is a fixed-size, lock-free latency histogram. The zero
// value is ready to use. Safe for concurrent Observe and Snapshot;
// snapshots taken under concurrent writes are internally consistent
// enough for reporting (counts are monotone, never torn).
type Histogram struct {
	buckets [numBuckets]atomic.Uint64
	count   atomic.Uint64
	sumUS   atomic.Uint64
	maxUS   atomic.Uint64
}

// Observe records one duration. Negative durations clamp to zero.
func (h *Histogram) Observe(d time.Duration) {
	us := uint64(0)
	if d > 0 {
		us = uint64(d.Microseconds())
	}
	h.buckets[bucketIndex(us)].Add(1)
	h.count.Add(1)
	h.sumUS.Add(us)
	for {
		cur := h.maxUS.Load()
		if us <= cur || h.maxUS.CompareAndSwap(cur, us) {
			return
		}
	}
}

// Count returns how many observations have been recorded.
func (h *Histogram) Count() uint64 { return h.count.Load() }

// Merge folds other's observations into h (used to combine per-worker
// shards after a load run). other should be quiescent.
func (h *Histogram) Merge(other *Histogram) {
	if other == nil {
		return
	}
	for i := range other.buckets {
		if n := other.buckets[i].Load(); n > 0 {
			h.buckets[i].Add(n)
		}
	}
	h.count.Add(other.count.Load())
	h.sumUS.Add(other.sumUS.Load())
	om := other.maxUS.Load()
	for {
		cur := h.maxUS.Load()
		if om <= cur || h.maxUS.CompareAndSwap(cur, om) {
			return
		}
	}
}

// LatencySummary is the JSON form of a histogram: mean, max, and the
// standard reporting quantiles, all in milliseconds.
type LatencySummary struct {
	Count  uint64  `json:"count"`
	MeanMS float64 `json:"mean_ms"`
	P50MS  float64 `json:"p50_ms"`
	P95MS  float64 `json:"p95_ms"`
	P99MS  float64 `json:"p99_ms"`
	MaxMS  float64 `json:"max_ms"`
}

// Summary snapshots the histogram into reporting form.
func (h *Histogram) Summary() LatencySummary {
	var counts [numBuckets]uint64
	var total uint64
	for i := range h.buckets {
		counts[i] = h.buckets[i].Load()
		total += counts[i]
	}
	s := LatencySummary{Count: total}
	if total == 0 {
		return s
	}
	s.MeanMS = float64(h.sumUS.Load()) / float64(total) / 1e3
	s.MaxMS = float64(h.maxUS.Load()) / 1e3
	s.P50MS = quantile(&counts, total, 0.50)
	s.P95MS = quantile(&counts, total, 0.95)
	s.P99MS = quantile(&counts, total, 0.99)
	return s
}

// Quantile estimates the q-th (0..1) latency quantile.
func (h *Histogram) Quantile(q float64) time.Duration {
	var counts [numBuckets]uint64
	var total uint64
	for i := range h.buckets {
		counts[i] = h.buckets[i].Load()
		total += counts[i]
	}
	if total == 0 {
		return 0
	}
	return time.Duration(quantile(&counts, total, q) * float64(time.Millisecond))
}

// quantile walks the cumulative bucket counts and returns the bucket
// midpoint at rank q*total, in milliseconds.
func quantile(counts *[numBuckets]uint64, total uint64, q float64) float64 {
	if q < 0 {
		q = 0
	}
	if q > 1 {
		q = 1
	}
	rank := uint64(q * float64(total))
	if rank >= total {
		rank = total - 1
	}
	var cum uint64
	for i := range counts {
		cum += counts[i]
		if cum > rank {
			return bucketMid(i) / 1e3
		}
	}
	return bucketMid(numBuckets-1) / 1e3
}
