package text

// Porter stemming algorithm (M.F. Porter, "An algorithm for suffix
// stripping", Program 14(3), 1980), including the two commonly adopted
// revisions (BLI->BLE replaced by ABLI->ABLE kept as in the original;
// LOGI->LOG added). The implementation operates on lower-case ASCII
// words; words containing non-ASCII bytes are returned unchanged.

// Stem returns the Porter stem of word. Words of length <= 2 are
// returned unchanged, per the original algorithm.
func Stem(word string) string {
	if len(word) <= 2 {
		return word
	}
	for i := 0; i < len(word); i++ {
		c := word[i]
		if c < 'a' || c > 'z' {
			if c >= '0' && c <= '9' {
				// Mixed alphanumerics (e.g. "g8", "2008") are
				// identifiers, not English words: do not stem.
				return word
			}
			return word
		}
	}
	w := stemState{b: []byte(word)}
	w.step1a()
	w.step1b()
	w.step1c()
	w.step2()
	w.step3()
	w.step4()
	w.step5a()
	w.step5b()
	return string(w.b)
}

type stemState struct {
	b []byte
}

// isConsonant reports whether the byte at index i is a consonant per
// Porter's definition: a letter other than a,e,i,o,u, with y counting
// as a consonant only when it follows a vowel-position consonant.
func (s *stemState) isConsonant(i int) bool {
	switch s.b[i] {
	case 'a', 'e', 'i', 'o', 'u':
		return false
	case 'y':
		if i == 0 {
			return true
		}
		return !s.isConsonant(i - 1)
	}
	return true
}

// measure computes m, the number of VC sequences in s.b[:end].
func (s *stemState) measure(end int) int {
	m := 0
	i := 0
	// Skip initial consonants.
	for i < end && s.isConsonant(i) {
		i++
	}
	for i < end {
		// In a vowel run.
		for i < end && !s.isConsonant(i) {
			i++
		}
		if i >= end {
			break
		}
		m++
		for i < end && s.isConsonant(i) {
			i++
		}
	}
	return m
}

// hasVowel reports whether s.b[:end] contains a vowel.
func (s *stemState) hasVowel(end int) bool {
	for i := 0; i < end; i++ {
		if !s.isConsonant(i) {
			return true
		}
	}
	return false
}

// doubleConsonant reports whether s.b[:end] ends in a double consonant.
func (s *stemState) doubleConsonant(end int) bool {
	if end < 2 {
		return false
	}
	if s.b[end-1] != s.b[end-2] {
		return false
	}
	return s.isConsonant(end - 1)
}

// cvc reports whether s.b[:end] ends consonant-vowel-consonant where the
// final consonant is not w, x or y (Porter's *o condition).
func (s *stemState) cvc(end int) bool {
	if end < 3 {
		return false
	}
	if !s.isConsonant(end-1) || s.isConsonant(end-2) || !s.isConsonant(end-3) {
		return false
	}
	switch s.b[end-1] {
	case 'w', 'x', 'y':
		return false
	}
	return true
}

// hasSuffix reports whether the current word ends with suf.
func (s *stemState) hasSuffix(suf string) bool {
	n := len(s.b)
	if len(suf) > n {
		return false
	}
	return string(s.b[n-len(suf):]) == suf
}

// replaceSuffix unconditionally swaps suf (assumed present) for rep.
func (s *stemState) replaceSuffix(suf, rep string) {
	s.b = append(s.b[:len(s.b)-len(suf)], rep...)
}

// replaceIfMeasure swaps suf for rep when m measured over the stem
// preceding suf exceeds minM-1 (i.e. m > minM-1, so pass 1 for m>0).
func (s *stemState) replaceIfMeasure(suf, rep string, minM int) bool {
	if !s.hasSuffix(suf) {
		return false
	}
	stemEnd := len(s.b) - len(suf)
	if s.measure(stemEnd) >= minM {
		s.replaceSuffix(suf, rep)
	}
	return true
}

func (s *stemState) step1a() {
	switch {
	case s.hasSuffix("sses"):
		s.replaceSuffix("sses", "ss")
	case s.hasSuffix("ies"):
		s.replaceSuffix("ies", "i")
	case s.hasSuffix("ss"):
		// unchanged
	case s.hasSuffix("s"):
		s.replaceSuffix("s", "")
	}
}

func (s *stemState) step1b() {
	if s.hasSuffix("eed") {
		if s.measure(len(s.b)-3) > 0 {
			s.replaceSuffix("eed", "ee")
		}
		return
	}
	fired := false
	if s.hasSuffix("ed") && s.hasVowel(len(s.b)-2) {
		s.replaceSuffix("ed", "")
		fired = true
	} else if s.hasSuffix("ing") && s.hasVowel(len(s.b)-3) {
		s.replaceSuffix("ing", "")
		fired = true
	}
	if !fired {
		return
	}
	switch {
	case s.hasSuffix("at"):
		s.replaceSuffix("at", "ate")
	case s.hasSuffix("bl"):
		s.replaceSuffix("bl", "ble")
	case s.hasSuffix("iz"):
		s.replaceSuffix("iz", "ize")
	case s.doubleConsonant(len(s.b)):
		switch s.b[len(s.b)-1] {
		case 'l', 's', 'z':
			// keep double letter
		default:
			s.b = s.b[:len(s.b)-1]
		}
	case s.measure(len(s.b)) == 1 && s.cvc(len(s.b)):
		s.b = append(s.b, 'e')
	}
}

func (s *stemState) step1c() {
	if s.hasSuffix("y") && s.hasVowel(len(s.b)-1) {
		s.b[len(s.b)-1] = 'i'
	}
}

var step2Rules = []struct{ suf, rep string }{
	{"ational", "ate"}, {"tional", "tion"}, {"enci", "ence"},
	{"anci", "ance"}, {"izer", "ize"}, {"abli", "able"}, {"alli", "al"},
	{"entli", "ent"}, {"eli", "e"}, {"ousli", "ous"}, {"ization", "ize"},
	{"ation", "ate"}, {"ator", "ate"}, {"alism", "al"},
	{"iveness", "ive"}, {"fulness", "ful"}, {"ousness", "ous"},
	{"aliti", "al"}, {"iviti", "ive"}, {"biliti", "ble"}, {"logi", "log"},
}

func (s *stemState) step2() {
	for _, r := range step2Rules {
		if s.replaceIfMeasure(r.suf, r.rep, 1) {
			return
		}
	}
}

var step3Rules = []struct{ suf, rep string }{
	{"icate", "ic"}, {"ative", ""}, {"alize", "al"}, {"iciti", "ic"},
	{"ical", "ic"}, {"ful", ""}, {"ness", ""},
}

func (s *stemState) step3() {
	for _, r := range step3Rules {
		if s.replaceIfMeasure(r.suf, r.rep, 1) {
			return
		}
	}
}

var step4Suffixes = []string{
	"al", "ance", "ence", "er", "ic", "able", "ible", "ant", "ement",
	"ment", "ent", "ion", "ou", "ism", "ate", "iti", "ous", "ive", "ize",
}

func (s *stemState) step4() {
	for _, suf := range step4Suffixes {
		if !s.hasSuffix(suf) {
			continue
		}
		stemEnd := len(s.b) - len(suf)
		if suf == "ion" {
			if stemEnd > 0 && (s.b[stemEnd-1] == 's' || s.b[stemEnd-1] == 't') && s.measure(stemEnd) > 1 {
				s.replaceSuffix(suf, "")
			}
			return
		}
		if s.measure(stemEnd) > 1 {
			s.replaceSuffix(suf, "")
		}
		return
	}
}

func (s *stemState) step5a() {
	if !s.hasSuffix("e") {
		return
	}
	stemEnd := len(s.b) - 1
	m := s.measure(stemEnd)
	if m > 1 || (m == 1 && !s.cvc(stemEnd)) {
		s.b = s.b[:stemEnd]
	}
}

func (s *stemState) step5b() {
	if s.measure(len(s.b)) > 1 && s.doubleConsonant(len(s.b)) && s.b[len(s.b)-1] == 'l' {
		s.b = s.b[:len(s.b)-1]
	}
}
