package text

// Analyzer is the full lexical pipeline: tokenise, drop stopwords,
// stem. The zero value is NOT ready to use; construct with NewAnalyzer
// so the stopword set is populated. An Analyzer is safe for concurrent
// use: all of its state is read-only after construction.
type Analyzer struct {
	tokenizer Tokenizer
	stops     StopSet
	stem      bool
}

// AnalyzerOption customises an Analyzer.
type AnalyzerOption func(*Analyzer)

// WithoutStemming disables the Porter stemming stage.
func WithoutStemming() AnalyzerOption {
	return func(a *Analyzer) { a.stem = false }
}

// WithStopSet replaces the default stopword set. Pass an empty StopSet
// to disable stopping entirely.
func WithStopSet(s StopSet) AnalyzerOption {
	return func(a *Analyzer) { a.stops = s }
}

// WithMaxTokenLen overrides the tokeniser's maximum token length.
func WithMaxTokenLen(n int) AnalyzerOption {
	return func(a *Analyzer) { a.tokenizer.MaxTokenLen = n }
}

// NewAnalyzer builds the default news-transcript pipeline: lower-case
// word tokenisation, English stopword removal, Porter stemming.
func NewAnalyzer(opts ...AnalyzerOption) *Analyzer {
	a := &Analyzer{
		stops: DefaultStopSet(),
		stem:  true,
	}
	for _, o := range opts {
		o(a)
	}
	return a
}

// Analyze runs the pipeline and returns the surviving tokens. Positions
// are re-numbered over the surviving tokens so downstream consumers see
// a dense position space; Offset still points into the original text.
func (a *Analyzer) Analyze(input string) []Token {
	raw := a.tokenizer.Tokenize(input)
	out := raw[:0]
	pos := 0
	for _, tk := range raw {
		if a.stops.Contains(tk.Term) {
			continue
		}
		if a.stem {
			tk.Term = Stem(tk.Term)
		}
		if tk.Term == "" {
			continue
		}
		tk.Position = pos
		pos++
		out = append(out, tk)
	}
	return out
}

// Terms runs the pipeline and returns only the surviving term strings.
func (a *Analyzer) Terms(input string) []string {
	toks := a.Analyze(input)
	terms := make([]string, len(toks))
	for i, tk := range toks {
		terms[i] = tk.Term
	}
	return terms
}

// TermCounts runs the pipeline and returns a term-frequency map, the
// representation the indexer and the feedback models consume.
func (a *Analyzer) TermCounts(input string) map[string]int {
	counts := make(map[string]int)
	for _, tk := range a.Analyze(input) {
		counts[tk.Term]++
	}
	return counts
}
