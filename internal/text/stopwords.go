package text

// stopwordList is a compact English stopword list tuned for broadcast
// news transcripts: the standard SMART-style function words plus the
// fillers that dominate anchor speech ("good", "evening", "welcome" are
// deliberately NOT stopped — they are content-bearing in news search).
var stopwordList = []string{
	"a", "about", "above", "after", "again", "against", "all", "am", "an",
	"and", "any", "are", "aren't", "as", "at", "be", "because", "been",
	"before", "being", "below", "between", "both", "but", "by", "can",
	"cannot", "could", "couldn't", "did", "didn't", "do", "does",
	"doesn't", "doing", "don't", "down", "during", "each", "few", "for",
	"from", "further", "had", "hadn't", "has", "hasn't", "have",
	"haven't", "having", "he", "he'd", "he'll", "he's", "her", "here",
	"here's", "hers", "herself", "him", "himself", "his", "how", "how's",
	"i", "i'd", "i'll", "i'm", "i've", "if", "in", "into", "is", "isn't",
	"it", "it's", "its", "itself", "let's", "me", "more", "most",
	"mustn't", "my", "myself", "no", "nor", "not", "of", "off", "on",
	"once", "only", "or", "other", "ought", "our", "ours", "ourselves",
	"out", "over", "own", "same", "shan't", "she", "she'd", "she'll",
	"she's", "should", "shouldn't", "so", "some", "such", "than", "that",
	"that's", "the", "their", "theirs", "them", "themselves", "then",
	"there", "there's", "these", "they", "they'd", "they'll", "they're",
	"they've", "this", "those", "through", "to", "too", "under", "until",
	"up", "very", "was", "wasn't", "we", "we'd", "we'll", "we're",
	"we've", "were", "weren't", "what", "what's", "when", "when's",
	"where", "where's", "which", "while", "who", "who's", "whom", "why",
	"why's", "with", "won't", "would", "wouldn't", "you", "you'd",
	"you'll", "you're", "you've", "your", "yours", "yourself",
	"yourselves",
	// Transcript fillers common in ASR output of live speech.
	"uh", "um", "er", "erm", "mm", "hmm", "yeah", "okay", "ok",
}

// StopSet is a set of stopword terms. The zero value is an empty set
// that stops nothing.
type StopSet map[string]struct{}

// DefaultStopSet returns a fresh copy of the built-in English news
// stopword set. Callers may add or remove entries without affecting
// other users.
func DefaultStopSet() StopSet {
	s := make(StopSet, len(stopwordList))
	for _, w := range stopwordList {
		s[w] = struct{}{}
	}
	return s
}

// Contains reports whether term is a stopword. Terms are expected to be
// lower-case already (the Tokenizer lower-cases).
func (s StopSet) Contains(term string) bool {
	_, ok := s[term]
	return ok
}

// Add inserts terms into the set.
func (s StopSet) Add(terms ...string) {
	for _, t := range terms {
		s[t] = struct{}{}
	}
}

// Remove deletes terms from the set; missing terms are ignored.
func (s StopSet) Remove(terms ...string) {
	for _, t := range terms {
		delete(s, t)
	}
}
