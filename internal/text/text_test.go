package text

import (
	"reflect"
	"strings"
	"testing"
	"testing/quick"
	"unicode"
)

func TestTokenizeBasic(t *testing.T) {
	var tk Tokenizer
	got := tk.Terms("The Prime Minister visited Glasgow, Scotland on 12 March!")
	want := []string{"the", "prime", "minister", "visited", "glasgow", "scotland", "on", "12", "march"}
	if !reflect.DeepEqual(got, want) {
		t.Errorf("Terms = %v, want %v", got, want)
	}
}

func TestTokenizeApostropheAndHyphen(t *testing.T) {
	var tk Tokenizer
	got := tk.Terms("BBC One O'Clock News covers build-up to the vote")
	want := []string{"bbc", "one", "oclock", "news", "covers", "buildup", "to", "the", "vote"}
	if !reflect.DeepEqual(got, want) {
		t.Errorf("Terms = %v, want %v", got, want)
	}
}

func TestTokenizeLeadingPunctDoesNotJoin(t *testing.T) {
	var tk Tokenizer
	got := tk.Terms("-start 'quote end-")
	want := []string{"start", "quote", "end"}
	if !reflect.DeepEqual(got, want) {
		t.Errorf("Terms = %v, want %v", got, want)
	}
}

func TestTokenizePositionsAndOffsets(t *testing.T) {
	var tk Tokenizer
	toks := tk.Tokenize("goal: football")
	if len(toks) != 2 {
		t.Fatalf("got %d tokens, want 2", len(toks))
	}
	if toks[0].Position != 0 || toks[1].Position != 1 {
		t.Errorf("positions = %d,%d want 0,1", toks[0].Position, toks[1].Position)
	}
	if toks[0].Offset != 0 {
		t.Errorf("first offset = %d, want 0", toks[0].Offset)
	}
	if toks[1].Offset != len("goal: ") {
		t.Errorf("second offset = %d, want %d", toks[1].Offset, len("goal: "))
	}
}

func TestTokenizeEmptyAndPunctOnly(t *testing.T) {
	var tk Tokenizer
	if got := tk.Terms(""); len(got) != 0 {
		t.Errorf("empty input produced tokens: %v", got)
	}
	if got := tk.Terms("...!!! --- ''"); len(got) != 0 {
		t.Errorf("punct-only input produced tokens: %v", got)
	}
}

func TestTokenizeMaxLen(t *testing.T) {
	tk := Tokenizer{MaxTokenLen: 4}
	got := tk.Terms("abcdefgh xy")
	want := []string{"abcd", "xy"}
	if !reflect.DeepEqual(got, want) {
		t.Errorf("Terms = %v, want %v", got, want)
	}
}

func TestTokenizeUnicode(t *testing.T) {
	var tk Tokenizer
	got := tk.Terms("Müller scored; 日本 wins")
	want := []string{"müller", "scored", "日本", "wins"}
	if !reflect.DeepEqual(got, want) {
		t.Errorf("Terms = %v, want %v", got, want)
	}
}

// Property: every produced term is non-empty, lower-case, and contains
// only letters and digits.
func TestTokenizePropertyWellFormed(t *testing.T) {
	var tk Tokenizer
	f := func(s string) bool {
		for _, tok := range tk.Tokenize(s) {
			if tok.Term == "" {
				return false
			}
			for _, r := range tok.Term {
				if !unicode.IsLetter(r) && !unicode.IsDigit(r) {
					return false
				}
				if r != unicode.ToLower(r) {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Property: tokenisation is idempotent on its own output joined by
// spaces (a second pass yields the same terms).
func TestTokenizePropertyIdempotent(t *testing.T) {
	var tk Tokenizer
	f := func(s string) bool {
		first := tk.Terms(s)
		second := tk.Terms(strings.Join(first, " "))
		return reflect.DeepEqual(first, second)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestStemKnownVectors(t *testing.T) {
	// Vectors from Porter's published examples and the canonical
	// voc/output test pairs.
	cases := map[string]string{
		"caresses":       "caress",
		"ponies":         "poni",
		"ties":           "ti",
		"caress":         "caress",
		"cats":           "cat",
		"feed":           "feed",
		"agreed":         "agre",
		"plastered":      "plaster",
		"bled":           "bled",
		"motoring":       "motor",
		"sing":           "sing",
		"conflated":      "conflat",
		"troubled":       "troubl",
		"sized":          "size",
		"hopping":        "hop",
		"tanned":         "tan",
		"falling":        "fall",
		"hissing":        "hiss",
		"fizzed":         "fizz",
		"failing":        "fail",
		"filing":         "file",
		"happy":          "happi",
		"sky":            "sky",
		"relational":     "relat",
		"conditional":    "condit",
		"rational":       "ration",
		"valenci":        "valenc",
		"hesitanci":      "hesit",
		"digitizer":      "digit",
		"conformabli":    "conform",
		"radicalli":      "radic",
		"differentli":    "differ",
		"vileli":         "vile",
		"analogousli":    "analog",
		"vietnamization": "vietnam",
		"predication":    "predic",
		"operator":       "oper",
		"feudalism":      "feudal",
		"decisiveness":   "decis",
		"hopefulness":    "hope",
		"callousness":    "callous",
		"formaliti":      "formal",
		"sensitiviti":    "sensit",
		"sensibiliti":    "sensibl",
		"triplicate":     "triplic",
		"formative":      "form",
		"formalize":      "formal",
		"electriciti":    "electr",
		"electrical":     "electr",
		"hopeful":        "hope",
		"goodness":       "good",
		"revival":        "reviv",
		"allowance":      "allow",
		"inference":      "infer",
		"airliner":       "airlin",
		"gyroscopic":     "gyroscop",
		"adjustable":     "adjust",
		"defensible":     "defens",
		"irritant":       "irrit",
		"replacement":    "replac",
		"adjustment":     "adjust",
		"dependent":      "depend",
		"adoption":       "adopt",
		"homologou":      "homolog",
		"communism":      "commun",
		"activate":       "activ",
		"angulariti":     "angular",
		"homologous":     "homolog",
		"effective":      "effect",
		"bowdlerize":     "bowdler",
		"probate":        "probat",
		"rate":           "rate",
		"cease":          "ceas",
		"controll":       "control",
		"roll":           "roll",
		"retrieval":      "retriev",
		"video":          "video",
		"videos":         "video",
		"news":           "new",
		"football":       "footbal",
		"politics":       "polit",
		"interaction":    "interact",
		"implicit":       "implicit",
	}
	for in, want := range cases {
		if got := Stem(in); got != want {
			t.Errorf("Stem(%q) = %q, want %q", in, got, want)
		}
	}
}

func TestStemShortWordsUnchanged(t *testing.T) {
	for _, w := range []string{"", "a", "is", "go", "tv"} {
		if got := Stem(w); got != w {
			t.Errorf("Stem(%q) = %q, want unchanged", w, got)
		}
	}
}

func TestStemNonAlphaUnchanged(t *testing.T) {
	for _, w := range []string{"2008", "g8", "mp3s", "über", "naïve"} {
		if got := Stem(w); got != w {
			t.Errorf("Stem(%q) = %q, want unchanged", w, got)
		}
	}
}

// Property: stems never grow beyond input length + 1 (step1b can add an
// 'e') and are always a prefix-preserving transformation (first letter
// unchanged) for pure ASCII lowercase words.
func TestStemPropertyBounded(t *testing.T) {
	f := func(s string) bool {
		// Build a plausible lowercase ASCII word from the input.
		var sb strings.Builder
		for _, r := range s {
			if r >= 'a' && r <= 'z' {
				sb.WriteRune(r)
			}
		}
		w := sb.String()
		if len(w) == 0 {
			return true
		}
		got := Stem(w)
		if len(got) > len(w)+1 {
			return false
		}
		if len(got) == 0 || got[0] != w[0] {
			return false
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestStopSet(t *testing.T) {
	s := DefaultStopSet()
	for _, w := range []string{"the", "and", "of", "uh"} {
		if !s.Contains(w) {
			t.Errorf("DefaultStopSet should contain %q", w)
		}
	}
	for _, w := range []string{"football", "news", "goal", "minister"} {
		if s.Contains(w) {
			t.Errorf("DefaultStopSet should not contain %q", w)
		}
	}
	s.Add("bbc")
	if !s.Contains("bbc") {
		t.Error("Add failed")
	}
	s.Remove("bbc", "never-there")
	if s.Contains("bbc") {
		t.Error("Remove failed")
	}
}

func TestDefaultStopSetIsolation(t *testing.T) {
	a := DefaultStopSet()
	a.Add("zzz")
	b := DefaultStopSet()
	if b.Contains("zzz") {
		t.Error("DefaultStopSet copies share state")
	}
}

func TestAnalyzerPipeline(t *testing.T) {
	a := NewAnalyzer()
	got := a.Terms("The footballers were running towards the goals")
	want := []string{"footbal", "run", "toward", "goal"}
	if !reflect.DeepEqual(got, want) {
		t.Errorf("Terms = %v, want %v", got, want)
	}
}

func TestAnalyzerNoStem(t *testing.T) {
	a := NewAnalyzer(WithoutStemming())
	got := a.Terms("running goals")
	want := []string{"running", "goals"}
	if !reflect.DeepEqual(got, want) {
		t.Errorf("Terms = %v, want %v", got, want)
	}
}

func TestAnalyzerCustomStops(t *testing.T) {
	s := StopSet{}
	s.Add("football")
	a := NewAnalyzer(WithStopSet(s), WithoutStemming())
	got := a.Terms("the football news")
	want := []string{"the", "news"}
	if !reflect.DeepEqual(got, want) {
		t.Errorf("Terms = %v, want %v", got, want)
	}
}

func TestAnalyzerPositionsDense(t *testing.T) {
	a := NewAnalyzer()
	toks := a.Analyze("the minister and the parliament")
	for i, tk := range toks {
		if tk.Position != i {
			t.Errorf("token %d has position %d", i, tk.Position)
		}
	}
}

func TestAnalyzerTermCounts(t *testing.T) {
	a := NewAnalyzer()
	counts := a.TermCounts("goal goal goals the")
	if counts["goal"] != 3 {
		t.Errorf("count[goal] = %d, want 3", counts["goal"])
	}
	if len(counts) != 1 {
		t.Errorf("len(counts) = %d, want 1 (%v)", len(counts), counts)
	}
}

func TestAnalyzerConcurrentUse(t *testing.T) {
	a := NewAnalyzer()
	done := make(chan struct{})
	for i := 0; i < 8; i++ {
		go func() {
			defer func() { done <- struct{}{} }()
			for j := 0; j < 100; j++ {
				a.Terms("the footballers were running towards the goals")
			}
		}()
	}
	for i := 0; i < 8; i++ {
		<-done
	}
}

func BenchmarkAnalyze(b *testing.B) {
	a := NewAnalyzer()
	input := strings.Repeat("the prime minister announced a new policy on football stadium funding today ", 20)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		a.Terms(input)
	}
}

func BenchmarkStem(b *testing.B) {
	words := []string{"relational", "vietnamization", "football", "adjustable", "goal"}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		Stem(words[i%len(words)])
	}
}
