// Package text provides the lexical analysis pipeline used by the
// retrieval engine: tokenisation, stopword filtering and Porter stemming.
//
// The pipeline is deliberately self-contained (stdlib only) and
// deterministic: the same input always yields the same token stream, a
// property the simulation and experiment harnesses rely on.
package text

import (
	"strings"
	"unicode"
)

// Token is a single lexical unit produced by the Tokenizer. Position is
// the zero-based index of the token in the token stream (after any
// filtering performed upstream of the consumer), and Offset is the byte
// offset of the token's first byte in the original input.
type Token struct {
	Term     string
	Position int
	Offset   int
}

// Tokenizer splits text into lower-cased word tokens. It treats letter
// and digit runs as token constituents, splits on everything else, and
// preserves intra-word apostrophes and hyphens by dropping them rather
// than splitting (so "o'clock" becomes "oclock" and "one-o-clock"
// becomes "oneoclock"), which keeps broadcast-news vocabulary such as
// programme names stable under noisy punctuation.
type Tokenizer struct {
	// MaxTokenLen truncates pathological tokens; zero means the
	// DefaultMaxTokenLen is applied.
	MaxTokenLen int
}

// DefaultMaxTokenLen bounds a single token's length in bytes.
const DefaultMaxTokenLen = 64

// Tokenize returns the token stream for the input text.
func (t Tokenizer) Tokenize(text string) []Token {
	maxLen := t.MaxTokenLen
	if maxLen <= 0 {
		maxLen = DefaultMaxTokenLen
	}
	var (
		tokens []Token
		sb     strings.Builder
		start  = -1
		pos    = 0
	)
	flush := func(end int) {
		if sb.Len() == 0 {
			start = -1
			return
		}
		term := sb.String()
		sb.Reset()
		if len(term) > maxLen {
			term = term[:maxLen]
		}
		tokens = append(tokens, Token{Term: term, Position: pos, Offset: start})
		pos++
		start = -1
		_ = end
	}
	for i, r := range text {
		switch {
		case unicode.IsLetter(r) || unicode.IsDigit(r):
			if start < 0 {
				start = i
			}
			sb.WriteRune(unicode.ToLower(r))
		case (r == '\'' || r == '-') && sb.Len() > 0:
			// Join pieces across intra-word apostrophes/hyphens.
		default:
			flush(i)
		}
	}
	flush(len(text))
	return tokens
}

// Terms is a convenience wrapper returning only the token terms.
func (t Tokenizer) Terms(text string) []string {
	toks := t.Tokenize(text)
	out := make([]string, len(toks))
	for i, tk := range toks {
		out[i] = tk.Term
	}
	return out
}
