package recommend

import (
	"fmt"
	"math"
	"sort"

	"repro/internal/search"
)

func sqrt(x float64) float64 { return math.Sqrt(x) }

// Seed is a starting point for spreading activation with its initial
// mass.
type Seed struct {
	Node NodeID
	Mass float64
}

// Options tunes spreading activation.
type Options struct {
	// Steps is the number of propagation rounds; zero selects 3 (two
	// hops reach user->query->shot plus one co-session hop).
	Steps int
	// Damping in (0,1] scales how much activation survives each hop;
	// zero selects 0.85.
	Damping float64
	// K bounds the recommendation list; zero selects 10.
	K int
	// Exclude drops shots (e.g. those the user already saw) from the
	// final recommendation, not from propagation.
	Exclude func(shotID string) bool
}

func (o Options) withDefaults() Options {
	if o.Steps == 0 {
		o.Steps = 3
	}
	if o.Damping == 0 {
		o.Damping = 0.85
	}
	if o.K == 0 {
		o.K = 10
	}
	return o
}

func (o Options) validate() error {
	if o.Steps < 0 {
		return fmt.Errorf("recommend: negative steps")
	}
	if o.Damping < 0 || o.Damping > 1 {
		return fmt.Errorf("recommend: damping %v outside (0,1]", o.Damping)
	}
	if o.K < 0 {
		return fmt.Errorf("recommend: negative K")
	}
	return nil
}

// Scored is one recommended shot.
type Scored struct {
	ShotID string
	Score  float64
}

// Spread runs spreading activation from the seeds and returns the
// activation of every reached node. The computation is deterministic:
// propagation visits nodes in sorted order.
func (g *Graph) Spread(seeds []Seed, opts Options) (map[NodeID]float64, error) {
	opts = opts.withDefaults()
	if err := opts.validate(); err != nil {
		return nil, err
	}
	activation := make(map[NodeID]float64)
	frontier := make(map[NodeID]float64)
	for _, s := range seeds {
		if s.Mass <= 0 {
			return nil, fmt.Errorf("recommend: seed %v:%s with non-positive mass %v",
				s.Node.Kind, s.Node.Key, s.Mass)
		}
		activation[s.Node] += s.Mass
		frontier[s.Node] += s.Mass
	}
	for step := 0; step < opts.Steps && len(frontier) > 0; step++ {
		next := make(map[NodeID]float64)
		// Deterministic frontier order.
		nodes := make([]NodeID, 0, len(frontier))
		for n := range frontier {
			nodes = append(nodes, n)
		}
		sort.Slice(nodes, func(i, j int) bool {
			if nodes[i].Kind != nodes[j].Kind {
				return nodes[i].Kind < nodes[j].Kind
			}
			return nodes[i].Key < nodes[j].Key
		})
		for _, n := range nodes {
			mass := frontier[n]
			neighbors, total := g.sortedNeighbors(n)
			if total == 0 {
				continue
			}
			for _, to := range neighbors {
				share := opts.Damping * mass * g.adj[n][to] / total
				if share <= 0 {
					continue
				}
				next[to] += share
				activation[to] += share
			}
		}
		frontier = next
	}
	return activation, nil
}

// RecommendShots spreads activation and returns the top-K activated
// shot nodes (excluding seeds' own shot nodes and anything Exclude
// rejects), ordered by descending score with ID ties ascending.
func (g *Graph) RecommendShots(seeds []Seed, opts Options) ([]Scored, error) {
	opts = opts.withDefaults()
	activation, err := g.Spread(seeds, opts)
	if err != nil {
		return nil, err
	}
	seedShots := make(map[string]bool)
	for _, s := range seeds {
		if s.Node.Kind == NodeShot {
			seedShots[s.Node.Key] = true
		}
	}
	// Bounded top-K selection instead of sorting the full activation
	// map: the graph activates far more shots than the K kept.
	top := search.NewTopK(opts.K)
	for n, score := range activation {
		if n.Kind != NodeShot || seedShots[n.Key] {
			continue
		}
		if opts.Exclude != nil && opts.Exclude(n.Key) {
			continue
		}
		top.Offer(search.Hit{ID: n.Key, Score: score})
	}
	return scoredFromHits(top.Ranked()), nil
}

// scoredFromHits converts the search layer's ranked hits back into the
// recommender's Scored form (same (score desc, ID asc) order).
func scoredFromHits(hits []search.Hit) []Scored {
	out := make([]Scored, len(hits))
	for i, h := range hits {
		out[i] = Scored{ShotID: h.ID, Score: h.Score}
	}
	return out
}

// RecommendForUser is the common call: seed from the user node plus
// their current query.
func (g *Graph) RecommendForUser(userID, query string, opts Options) ([]Scored, error) {
	seeds := []Seed{{Node: UserNode(userID), Mass: 1}}
	if query != "" {
		seeds = append(seeds, Seed{Node: QueryNode(query), Mass: 1})
	}
	return g.RecommendShots(seeds, opts)
}
