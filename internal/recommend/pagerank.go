package recommend

import (
	"fmt"
	"math"
	"sort"

	"repro/internal/search"
)

// PPROptions tunes personalised PageRank (random walk with restart).
type PPROptions struct {
	// Damping is the walk-continuation probability; zero selects 0.85.
	Damping float64
	// MaxIter bounds power iteration; zero selects 50.
	MaxIter int
	// Tol is the L1 convergence threshold; zero selects 1e-9.
	Tol float64
}

func (o PPROptions) withDefaults() PPROptions {
	if o.Damping == 0 {
		o.Damping = 0.85
	}
	if o.MaxIter == 0 {
		o.MaxIter = 50
	}
	if o.Tol == 0 {
		o.Tol = 1e-9
	}
	return o
}

func (o PPROptions) validate() error {
	if o.Damping <= 0 || o.Damping >= 1 {
		return fmt.Errorf("recommend: ppr damping %v outside (0,1)", o.Damping)
	}
	if o.MaxIter < 1 {
		return fmt.Errorf("recommend: ppr max iterations must be >= 1")
	}
	if o.Tol <= 0 {
		return fmt.Errorf("recommend: ppr tolerance must be positive")
	}
	return nil
}

// PersonalizedPageRank computes the stationary distribution of a
// random walk that restarts to the (normalised) seed distribution with
// probability 1-damping each step — the global alternative to the
// local spreading activation in Spread. Dangling mass is returned to
// the seeds, and iteration order is sorted, so results are
// deterministic.
func (g *Graph) PersonalizedPageRank(seeds []Seed, opts PPROptions) (map[NodeID]float64, error) {
	opts = opts.withDefaults()
	if err := opts.validate(); err != nil {
		return nil, err
	}
	if len(seeds) == 0 {
		return map[NodeID]float64{}, nil
	}
	// Normalised restart vector.
	restart := make(map[NodeID]float64, len(seeds))
	var totalSeed float64
	for _, s := range seeds {
		if s.Mass <= 0 {
			return nil, fmt.Errorf("recommend: seed %v:%s with non-positive mass %v",
				s.Node.Kind, s.Node.Key, s.Mass)
		}
		restart[s.Node] += s.Mass
		totalSeed += s.Mass
	}
	for n := range restart {
		restart[n] /= totalSeed
	}
	// Node universe in sorted order for deterministic float sums.
	nodes := make([]NodeID, 0, len(g.adj)+len(restart))
	seen := make(map[NodeID]bool, len(g.adj))
	for n := range g.adj {
		nodes = append(nodes, n)
		seen[n] = true
	}
	for n := range restart {
		if !seen[n] {
			nodes = append(nodes, n)
		}
	}
	sort.Slice(nodes, func(i, j int) bool {
		if nodes[i].Kind != nodes[j].Kind {
			return nodes[i].Kind < nodes[j].Kind
		}
		return nodes[i].Key < nodes[j].Key
	})

	x := make(map[NodeID]float64, len(nodes))
	for n, v := range restart {
		x[n] = v
	}
	for iter := 0; iter < opts.MaxIter; iter++ {
		next := make(map[NodeID]float64, len(x))
		var dangling float64
		for _, n := range nodes {
			mass := x[n]
			if mass == 0 {
				continue
			}
			neighbors, total := g.sortedNeighbors(n)
			if total == 0 {
				dangling += mass
				continue
			}
			for _, to := range neighbors {
				next[to] += opts.Damping * mass * g.adj[n][to] / total
			}
		}
		// Restart mass: teleport probability plus dangling recycling.
		restartMass := (1 - opts.Damping) + opts.Damping*dangling
		for n, v := range restart {
			next[n] += restartMass * v
		}
		// L1 convergence over the sorted universe.
		var delta float64
		for _, n := range nodes {
			delta += math.Abs(next[n] - x[n])
		}
		x = next
		if delta < opts.Tol {
			break
		}
	}
	return x, nil
}

// RecommendShotsPPR is the PageRank counterpart of RecommendShots:
// top-K activated shots excluding seeds and Excluded IDs.
func (g *Graph) RecommendShotsPPR(seeds []Seed, opts Options, ppr PPROptions) ([]Scored, error) {
	opts = opts.withDefaults()
	if err := opts.validate(); err != nil {
		return nil, err
	}
	activation, err := g.PersonalizedPageRank(seeds, ppr)
	if err != nil {
		return nil, err
	}
	seedShots := make(map[string]bool)
	for _, s := range seeds {
		if s.Node.Kind == NodeShot {
			seedShots[s.Node.Key] = true
		}
	}
	// Bounded top-K selection instead of sorting every ranked node.
	top := search.NewTopK(opts.K)
	for n, score := range activation {
		if n.Kind != NodeShot || seedShots[n.Key] || score <= 0 {
			continue
		}
		if opts.Exclude != nil && opts.Exclude(n.Key) {
			continue
		}
		top.Offer(search.Hit{ID: n.Key, Score: score})
	}
	return scoredFromHits(top.Ranked()), nil
}
