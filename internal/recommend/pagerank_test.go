package recommend

import (
	"fmt"
	"math"
	"math/rand"
	"reflect"
	"testing"
)

func chainGraph(t *testing.T) *Graph {
	t.Helper()
	g := NewGraph()
	// q -> s1 <-> s2 <-> s3 chain plus a user.
	if err := g.ObserveSession("u1", "q", []WeightedShot{
		{ShotID: "s1", Mass: 1}, {ShotID: "s2", Mass: 1}, {ShotID: "s3", Mass: 1},
	}); err != nil {
		t.Fatal(err)
	}
	return g
}

func TestPPRSumsToOne(t *testing.T) {
	g := chainGraph(t)
	x, err := g.PersonalizedPageRank([]Seed{{Node: UserNode("u1"), Mass: 1}}, PPROptions{})
	if err != nil {
		t.Fatal(err)
	}
	var sum float64
	for _, v := range x {
		sum += v
	}
	if math.Abs(sum-1) > 1e-6 {
		t.Errorf("stationary mass sums to %v, want 1", sum)
	}
}

func TestPPRProximityOrdering(t *testing.T) {
	g := chainGraph(t)
	x, err := g.PersonalizedPageRank([]Seed{{Node: ShotNode("s1"), Mass: 1}}, PPROptions{})
	if err != nil {
		t.Fatal(err)
	}
	if x[ShotNode("s2")] <= x[ShotNode("s3")] {
		t.Errorf("nearer node should rank higher: s2=%v s3=%v",
			x[ShotNode("s2")], x[ShotNode("s3")])
	}
	if x[ShotNode("s1")] <= 0 {
		t.Error("seed lost all mass")
	}
}

func TestPPRDanglingMassRecycled(t *testing.T) {
	g := NewGraph()
	// One directed edge into a dangling node.
	if err := g.AddEdge(QueryNode("q"), ShotNode("sink"), 1); err != nil {
		t.Fatal(err)
	}
	x, err := g.PersonalizedPageRank([]Seed{{Node: QueryNode("q"), Mass: 1}}, PPROptions{})
	if err != nil {
		t.Fatal(err)
	}
	var sum float64
	for _, v := range x {
		sum += v
	}
	if math.Abs(sum-1) > 1e-6 {
		t.Errorf("dangling graph mass sums to %v", sum)
	}
}

func TestPPRValidation(t *testing.T) {
	g := chainGraph(t)
	if _, err := g.PersonalizedPageRank([]Seed{{Node: UserNode("u"), Mass: 0}}, PPROptions{}); err == nil {
		t.Error("zero seed mass accepted")
	}
	if _, err := g.PersonalizedPageRank(nil, PPROptions{Damping: 1.5}); err == nil {
		t.Error("bad damping accepted")
	}
	if _, err := g.PersonalizedPageRank(nil, PPROptions{MaxIter: -1}); err == nil {
		t.Error("negative iterations accepted")
	}
	x, err := g.PersonalizedPageRank(nil, PPROptions{})
	if err != nil || len(x) != 0 {
		t.Errorf("no seeds should give empty result: %v %v", x, err)
	}
}

func TestPPRDeterministic(t *testing.T) {
	build := func() *Graph {
		g := NewGraph()
		r := rand.New(rand.NewSource(17))
		for u := 0; u < 8; u++ {
			shots := []WeightedShot{
				{ShotID: fmt.Sprintf("s%02d", r.Intn(20)), Mass: 0.5 + r.Float64()},
				{ShotID: fmt.Sprintf("s%02d", r.Intn(20)), Mass: 0.5 + r.Float64()},
			}
			if shots[0].ShotID == shots[1].ShotID {
				shots = shots[:1]
			}
			if err := g.ObserveSession(fmt.Sprintf("u%d", u), fmt.Sprintf("q%d", u%3), shots); err != nil {
				t.Fatal(err)
			}
		}
		return g
	}
	a, err := build().RecommendShotsPPR(
		[]Seed{{Node: QueryNode("q1"), Mass: 1}}, Options{K: 10}, PPROptions{})
	if err != nil {
		t.Fatal(err)
	}
	b, err := build().RecommendShotsPPR(
		[]Seed{{Node: QueryNode("q1"), Mass: 1}}, Options{K: 10}, PPROptions{})
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(a, b) {
		t.Error("PPR recommendations not deterministic")
	}
	if len(a) == 0 {
		t.Error("no recommendations from populated graph")
	}
}

func TestRecommendShotsPPRExcludes(t *testing.T) {
	g := chainGraph(t)
	recs, err := g.RecommendShotsPPR(
		[]Seed{{Node: ShotNode("s1"), Mass: 1}},
		Options{K: 5, Exclude: func(id string) bool { return id == "s2" }},
		PPROptions{})
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range recs {
		if r.ShotID == "s1" || r.ShotID == "s2" {
			t.Errorf("excluded/seed shot recommended: %s", r.ShotID)
		}
	}
}

func TestPPRAndSpreadAgreeOnChainOrder(t *testing.T) {
	g := chainGraph(t)
	seeds := []Seed{{Node: QueryNode("q"), Mass: 1}}
	sa, err := g.RecommendShots(seeds, Options{K: 3})
	if err != nil {
		t.Fatal(err)
	}
	pr, err := g.RecommendShotsPPR(seeds, Options{K: 3}, PPROptions{})
	if err != nil {
		t.Fatal(err)
	}
	if len(sa) == 0 || len(pr) == 0 {
		t.Fatal("empty recommendations")
	}
	if sa[0].ShotID != pr[0].ShotID {
		t.Errorf("top recommendation disagrees: spread=%s ppr=%s", sa[0].ShotID, pr[0].ShotID)
	}
}

func BenchmarkPPR(b *testing.B) {
	g := NewGraph()
	r := rand.New(rand.NewSource(3))
	for u := 0; u < 40; u++ {
		for s := 0; s < 8; s++ {
			shots := []WeightedShot{
				{ShotID: fmt.Sprintf("s%03d", r.Intn(200)), Mass: 0.5 + r.Float64()},
				{ShotID: fmt.Sprintf("s%03d", r.Intn(200)), Mass: 0.5 + r.Float64()},
			}
			if shots[0].ShotID == shots[1].ShotID {
				shots = shots[:1]
			}
			if err := g.ObserveSession(fmt.Sprintf("u%d", u), fmt.Sprintf("q%d", r.Intn(12)), shots); err != nil {
				b.Fatal(err)
			}
		}
	}
	seeds := []Seed{{Node: QueryNode("q3"), Mass: 1}}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := g.RecommendShotsPPR(seeds, Options{K: 10}, PPROptions{}); err != nil {
			b.Fatal(err)
		}
	}
}
