package recommend

import (
	"fmt"
	"math/rand"
	"reflect"
	"testing"
	"testing/quick"
)

func TestAddEdgeAccumulates(t *testing.T) {
	g := NewGraph()
	a, b := UserNode("u"), ShotNode("s")
	if err := g.AddEdge(a, b, 1); err != nil {
		t.Fatal(err)
	}
	if err := g.AddEdge(a, b, 2); err != nil {
		t.Fatal(err)
	}
	if w := g.EdgeWeight(a, b); w != 3 {
		t.Errorf("weight = %v, want 3", w)
	}
	if g.NumEdges() != 1 {
		t.Errorf("edges = %d, want 1", g.NumEdges())
	}
	if g.NumNodes() != 2 {
		t.Errorf("nodes = %d, want 2", g.NumNodes())
	}
}

func TestAddEdgeRejects(t *testing.T) {
	g := NewGraph()
	if err := g.AddEdge(UserNode("u"), ShotNode("s"), 0); err == nil {
		t.Error("zero weight accepted")
	}
	if err := g.AddEdge(UserNode("u"), UserNode("u"), 1); err == nil {
		t.Error("self edge accepted")
	}
}

func TestObserveSessionTopology(t *testing.T) {
	g := NewGraph()
	err := g.ObserveSession("u1", "football", []WeightedShot{
		{ShotID: "s1", Mass: 1.0},
		{ShotID: "s2", Mass: 0.5},
		{ShotID: "skip", Mass: 0},
	})
	if err != nil {
		t.Fatal(err)
	}
	u, q := UserNode("u1"), QueryNode("football")
	if g.EdgeWeight(u, q) != 1 {
		t.Error("user->query edge missing")
	}
	if g.EdgeWeight(q, ShotNode("s1")) != 1 {
		t.Error("query->shot edge missing")
	}
	if g.EdgeWeight(ShotNode("s1"), q) != 0.5 {
		t.Error("shot->query back edge missing")
	}
	if g.EdgeWeight(u, ShotNode("s2")) != 0.5 {
		t.Error("user->shot edge missing")
	}
	if g.EdgeWeight(ShotNode("s1"), ShotNode("s2")) == 0 {
		t.Error("co-session edge missing")
	}
	if g.EdgeWeight(ShotNode("s2"), ShotNode("s1")) == 0 {
		t.Error("co-session edge not symmetric")
	}
	if g.EdgeWeight(q, ShotNode("skip")) != 0 {
		t.Error("zero-mass shot added")
	}
}

func TestSpreadReachesCommunityShots(t *testing.T) {
	g := NewGraph()
	// Two users issue the same query; u1 watched s1, u2 watched s2.
	if err := g.ObserveSession("u1", "cup final", []WeightedShot{{ShotID: "s1", Mass: 1}}); err != nil {
		t.Fatal(err)
	}
	if err := g.ObserveSession("u2", "cup final", []WeightedShot{{ShotID: "s2", Mass: 1}}); err != nil {
		t.Fatal(err)
	}
	recs, err := g.RecommendForUser("u1", "cup final", Options{K: 5})
	if err != nil {
		t.Fatal(err)
	}
	found := false
	for _, r := range recs {
		if r.ShotID == "s2" {
			found = true
		}
	}
	if !found {
		t.Errorf("community shot s2 not recommended: %v", recs)
	}
}

func TestRecommendExcludes(t *testing.T) {
	g := NewGraph()
	g.ObserveSession("u1", "q", []WeightedShot{{ShotID: "seen", Mass: 1}, {ShotID: "new", Mass: 1}})
	recs, err := g.RecommendForUser("u1", "q", Options{
		K:       5,
		Exclude: func(id string) bool { return id == "seen" },
	})
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range recs {
		if r.ShotID == "seen" {
			t.Error("excluded shot recommended")
		}
	}
}

func TestRecommendShotSeedsExcluded(t *testing.T) {
	g := NewGraph()
	g.ObserveSession("u1", "q", []WeightedShot{{ShotID: "a", Mass: 1}, {ShotID: "b", Mass: 1}})
	recs, err := g.RecommendShots([]Seed{{Node: ShotNode("a"), Mass: 1}}, Options{K: 5})
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range recs {
		if r.ShotID == "a" {
			t.Error("seed shot recommended back")
		}
	}
	if len(recs) == 0 || recs[0].ShotID != "b" {
		t.Errorf("expected co-session shot b, got %v", recs)
	}
}

func TestSpreadValidation(t *testing.T) {
	g := NewGraph()
	if _, err := g.Spread([]Seed{{Node: UserNode("u"), Mass: 0}}, Options{}); err == nil {
		t.Error("zero seed mass accepted")
	}
	if _, err := g.Spread(nil, Options{Steps: -1}); err == nil {
		t.Error("negative steps accepted")
	}
	if _, err := g.Spread(nil, Options{Damping: 2}); err == nil {
		t.Error("damping > 1 accepted")
	}
	if _, err := g.RecommendShots(nil, Options{K: -1}); err == nil {
		t.Error("negative K accepted")
	}
}

func TestSpreadDampingDiminishes(t *testing.T) {
	g := NewGraph()
	// Chain: q -> s1 <-> s2 <-> s3.
	g.ObserveSession("", "q", []WeightedShot{
		{ShotID: "s1", Mass: 1}, {ShotID: "s2", Mass: 1}, {ShotID: "s3", Mass: 1},
	})
	act, err := g.Spread([]Seed{{Node: ShotNode("s1"), Mass: 1}}, Options{Steps: 4, Damping: 0.5})
	if err != nil {
		t.Fatal(err)
	}
	if act[ShotNode("s2")] <= act[ShotNode("s3")] {
		t.Errorf("nearer node should be more activated: s2=%v s3=%v",
			act[ShotNode("s2")], act[ShotNode("s3")])
	}
}

func TestRecommendDeterministic(t *testing.T) {
	build := func() *Graph {
		g := NewGraph()
		r := rand.New(rand.NewSource(42))
		for u := 0; u < 10; u++ {
			for s := 0; s < 5; s++ {
				shots := []WeightedShot{
					{ShotID: fmt.Sprintf("s%02d", r.Intn(30)), Mass: 0.5 + r.Float64()},
					{ShotID: fmt.Sprintf("s%02d", r.Intn(30)), Mass: 0.5 + r.Float64()},
				}
				if shots[0].ShotID == shots[1].ShotID {
					shots = shots[:1]
				}
				if err := g.ObserveSession(fmt.Sprintf("u%d", u), fmt.Sprintf("q%d", r.Intn(6)), shots); err != nil {
					t.Fatal(err)
				}
			}
		}
		return g
	}
	g1, g2 := build(), build()
	r1, err := g1.RecommendForUser("u3", "q2", Options{K: 10})
	if err != nil {
		t.Fatal(err)
	}
	r2, err := g2.RecommendForUser("u3", "q2", Options{K: 10})
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(r1, r2) {
		t.Error("recommendations not deterministic")
	}
	if len(r1) == 0 {
		t.Error("no recommendations from a populated graph")
	}
}

func TestRecommendEmptyGraph(t *testing.T) {
	g := NewGraph()
	recs, err := g.RecommendForUser("ghost", "nothing", Options{})
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 0 {
		t.Errorf("empty graph recommended %v", recs)
	}
}

// Property: recommendation scores are positive, sorted descending, and
// the list never exceeds K.
func TestPropertyRecommendWellFormed(t *testing.T) {
	f := func(seed int64, k8 uint8) bool {
		r := rand.New(rand.NewSource(seed))
		g := NewGraph()
		for u := 0; u < 5; u++ {
			shots := []WeightedShot{}
			for s := 0; s < 1+r.Intn(4); s++ {
				shots = append(shots, WeightedShot{
					ShotID: fmt.Sprintf("s%d", r.Intn(12)),
					Mass:   0.1 + r.Float64(),
				})
			}
			// Drop accidental consecutive duplicates (self-edges).
			clean := shots[:1]
			for _, s := range shots[1:] {
				if s.ShotID != clean[len(clean)-1].ShotID {
					clean = append(clean, s)
				}
			}
			if err := g.ObserveSession(fmt.Sprintf("u%d", u), fmt.Sprintf("q%d", r.Intn(3)), clean); err != nil {
				return false
			}
		}
		k := 1 + int(k8%10)
		recs, err := g.RecommendForUser("u0", "q0", Options{K: k})
		if err != nil {
			return false
		}
		if len(recs) > k {
			return false
		}
		for i, rec := range recs {
			if rec.Score <= 0 {
				return false
			}
			if i > 0 && recs[i-1].Score < rec.Score {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

func TestNodeKindString(t *testing.T) {
	if NodeUser.String() != "user" || NodeQuery.String() != "query" || NodeShot.String() != "shot" {
		t.Error("kind names wrong")
	}
	if NodeKind(9).String() == "" {
		t.Error("unknown kind empty")
	}
}

func BenchmarkSpread(b *testing.B) {
	g := NewGraph()
	r := rand.New(rand.NewSource(7))
	for u := 0; u < 50; u++ {
		for s := 0; s < 10; s++ {
			shots := []WeightedShot{
				{ShotID: fmt.Sprintf("s%03d", r.Intn(300)), Mass: 0.5 + r.Float64()},
				{ShotID: fmt.Sprintf("s%03d", r.Intn(300)), Mass: 0.5 + r.Float64()},
				{ShotID: fmt.Sprintf("s%03d", r.Intn(300)), Mass: 0.5 + r.Float64()},
			}
			clean := shots[:1]
			for _, sh := range shots[1:] {
				if sh.ShotID != clean[len(clean)-1].ShotID {
					clean = append(clean, sh)
				}
			}
			if err := g.ObserveSession(fmt.Sprintf("u%d", u), fmt.Sprintf("q%d", r.Intn(20)), clean); err != nil {
				b.Fatal(err)
			}
		}
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := g.RecommendForUser("u7", "q3", Options{K: 10}); err != nil {
			b.Fatal(err)
		}
	}
}
