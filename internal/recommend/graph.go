// Package recommend implements the community implicit-feedback graph
// of Vallet, Hopfgartner & Jose (ECIR'08), which the paper reports
// using "community based implicit feedback mined from the interactions
// of previous users ... to aid users in their search tasks": a typed,
// weighted graph over users, queries and shots, built from interaction
// logs, queried by spreading activation to recommend shots.
package recommend

import (
	"fmt"
	"sort"
)

// NodeKind types a graph node.
type NodeKind uint8

// Node kinds.
const (
	NodeUser NodeKind = iota
	NodeQuery
	NodeShot
)

// String names the kind.
func (k NodeKind) String() string {
	switch k {
	case NodeUser:
		return "user"
	case NodeQuery:
		return "query"
	case NodeShot:
		return "shot"
	}
	return fmt.Sprintf("NodeKind(%d)", uint8(k))
}

// NodeID identifies a node: a kind plus the domain key (user ID,
// normalised query string, shot ID).
type NodeID struct {
	Kind NodeKind
	Key  string
}

// UserNode, QueryNode and ShotNode build typed node IDs.
func UserNode(id string) NodeID     { return NodeID{Kind: NodeUser, Key: id} }
func QueryNode(query string) NodeID { return NodeID{Kind: NodeQuery, Key: query} }
func ShotNode(id string) NodeID     { return NodeID{Kind: NodeShot, Key: id} }

// Graph is a weighted directed graph accumulated from interaction
// histories. Building is single-goroutine; a built graph may be read
// concurrently.
type Graph struct {
	adj   map[NodeID]map[NodeID]float64
	edges int
}

// NewGraph returns an empty graph.
func NewGraph() *Graph {
	return &Graph{adj: make(map[NodeID]map[NodeID]float64)}
}

// NumNodes counts nodes with at least one incident edge.
func (g *Graph) NumNodes() int { return len(g.adj) }

// NumEdges counts distinct directed edges.
func (g *Graph) NumEdges() int { return g.edges }

// AddEdge accumulates weight onto the directed edge from->to (and
// registers both endpoints). Non-positive weights are rejected.
func (g *Graph) AddEdge(from, to NodeID, w float64) error {
	if w <= 0 {
		return fmt.Errorf("recommend: edge weight must be positive, got %v", w)
	}
	if from == to {
		return fmt.Errorf("recommend: self-edge on %v:%s", from.Kind, from.Key)
	}
	m := g.adj[from]
	if m == nil {
		m = make(map[NodeID]float64)
		g.adj[from] = m
	}
	if _, existed := m[to]; !existed {
		g.edges++
	}
	m[to] += w
	if g.adj[to] == nil {
		g.adj[to] = make(map[NodeID]float64)
	}
	return nil
}

// EdgeWeight returns the accumulated weight of from->to (0 if absent).
func (g *Graph) EdgeWeight(from, to NodeID) float64 { return g.adj[from][to] }

// WeightedShot is a shot with the implicit relevance mass a session
// assigned to it.
type WeightedShot struct {
	ShotID string
	Mass   float64
}

// ObserveSession folds one session's implicit history into the graph:
//
//	user -> query            (the user issued the query)
//	query <-> shot           (the shot attracted evidence under the query)
//	user -> shot             (direct interest edge)
//	shot_i <-> shot_{i+1}    (co-session transition, geometric-mean weight)
//
// Shots with non-positive mass are skipped.
func (g *Graph) ObserveSession(userID, query string, shots []WeightedShot) error {
	u := UserNode(userID)
	q := QueryNode(query)
	if userID != "" && query != "" {
		if err := g.AddEdge(u, q, 1); err != nil {
			return err
		}
	}
	var prev *WeightedShot
	for i := range shots {
		s := shots[i]
		if s.Mass <= 0 {
			continue
		}
		sn := ShotNode(s.ShotID)
		if query != "" {
			if err := g.AddEdge(q, sn, s.Mass); err != nil {
				return err
			}
			if err := g.AddEdge(sn, q, s.Mass/2); err != nil {
				return err
			}
		}
		if userID != "" {
			if err := g.AddEdge(u, sn, s.Mass); err != nil {
				return err
			}
		}
		if prev != nil && prev.ShotID != s.ShotID {
			w := geoMean(prev.Mass, s.Mass)
			if err := g.AddEdge(ShotNode(prev.ShotID), sn, w); err != nil {
				return err
			}
			if err := g.AddEdge(sn, ShotNode(prev.ShotID), w); err != nil {
				return err
			}
		}
		prev = &shots[i]
	}
	return nil
}

func geoMean(a, b float64) float64 {
	if a <= 0 || b <= 0 {
		return 0
	}
	// sqrt(a*b) without importing math for one call would be silly;
	// use the obvious form.
	return sqrt(a * b)
}

// sortedNeighbors returns the out-neighbours of n in deterministic
// order along with the total out-weight.
func (g *Graph) sortedNeighbors(n NodeID) ([]NodeID, float64) {
	m := g.adj[n]
	if len(m) == 0 {
		return nil, 0
	}
	out := make([]NodeID, 0, len(m))
	for to := range m {
		out = append(out, to)
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Kind != out[j].Kind {
			return out[i].Kind < out[j].Kind
		}
		return out[i].Key < out[j].Key
	})
	// Sum in sorted order: float addition is not associative, and the
	// spread must be bit-for-bit deterministic across runs.
	var total float64
	for _, to := range out {
		total += m[to]
	}
	return out, total
}
