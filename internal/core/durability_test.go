package core

import (
	"errors"
	"fmt"
	"path/filepath"
	"reflect"
	"sync"
	"testing"
	"time"

	"repro/internal/ilog"
	"repro/internal/sessionstore"
	"repro/internal/synth"
)

func TestBinaryCodecRoundTrip(t *testing.T) {
	arch, sys := fixture(t, Config{UseImplicit: true, UseProfile: true, ProfileLearnRate: 0.2})
	st := arch.Truth.SearchTopics[0]
	sess := sys.NewSession("bin-1", nil)
	hits, err := sess.Query(st.Query)
	if err != nil {
		t.Fatal(err)
	}
	ids := hits.IDs()
	for i := 0; i < 3 && i < len(ids); i++ {
		err := sess.Observe(ilog.Event{
			SessionID: "bin-1", Action: ilog.ActionClickKeyframe,
			ShotID: ids[i], Rank: i,
		})
		if err != nil {
			t.Fatal(err)
		}
	}
	if _, err := sess.Query(st.Query); err != nil {
		t.Fatal(err)
	}

	data, err := sess.EncodeState()
	if err != nil {
		t.Fatal(err)
	}
	if data[0] != binarySnapshotTag {
		t.Fatalf("binary snapshot tag = 0x%02x", data[0])
	}
	// Deterministic: encoding the same state twice is byte-identical
	// (the store write-through's no-change skip depends on this).
	again, err := sess.EncodeState()
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(data, again) {
		t.Fatal("EncodeState is not deterministic")
	}

	restored, err := sys.RestoreSession(data)
	if err != nil {
		t.Fatal(err)
	}
	if restored.Step() != sess.Step() || restored.EvidenceCount() != sess.EvidenceCount() ||
		restored.SeenShots() != sess.SeenShots() || restored.LastQuery() != sess.LastQuery() {
		t.Fatal("binary round-trip lost session state")
	}
	if restored.EvidenceFingerprint() != sess.EvidenceFingerprint() {
		t.Fatalf("fingerprint %x != %x after binary round-trip",
			restored.EvidenceFingerprint(), sess.EvidenceFingerprint())
	}
	// And the binary codec restores the exact same session the JSON
	// codec does.
	jsonData, err := sess.Snapshot()
	if err != nil {
		t.Fatal(err)
	}
	viaJSON, err := sys.RestoreSession(jsonData)
	if err != nil {
		t.Fatal(err)
	}
	a, err := restored.Query(st.Query)
	if err != nil {
		t.Fatal(err)
	}
	b, err := viaJSON.Query(st.Query)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(a.IDs(), b.IDs()) {
		t.Fatal("binary and JSON codecs restore different sessions")
	}
}

func TestBinaryCodecRejectsCorrupt(t *testing.T) {
	_, sys := fixture(t, Config{UseImplicit: true})
	sess := sys.NewSession("bin-2", nil)
	data, err := sess.EncodeState()
	if err != nil {
		t.Fatal(err)
	}
	cases := [][]byte{
		{},
		{0x7f},
		data[:len(data)-1],
		append(append([]byte{}, data...), 0xee),
	}
	for i, c := range cases {
		if _, err := sys.RestoreSession(c); err == nil {
			t.Errorf("corrupt binary snapshot %d accepted", i)
		}
	}
}

// failingStore wraps a SessionStore and fails Puts on demand, to
// exercise the dirty-flag retry path.
type failingStore struct {
	sessionstore.SessionStore
	failPuts bool
}

func (f *failingStore) Put(id string, state []byte) error {
	if f.failPuts {
		return errors.New("store down")
	}
	return f.SessionStore.Put(id, state)
}

func newStoreManager(t *testing.T, sys *System, store sessionstore.SessionStore, opts ManagerOptions) *SessionManager {
	t.Helper()
	opts.Store = store
	m, err := NewSessionManager(sys, opts)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { m.Close() })
	return m
}

func TestManagerWriteThroughAndRestore(t *testing.T) {
	arch, sys := fixture(t, Config{UseImplicit: true})
	st := arch.Truth.SearchTopics[0]
	store := sessionstore.NewMemoryStore()
	m := newStoreManager(t, sys, store, ManagerOptions{})

	id, err := m.Create(nil)
	if err != nil {
		t.Fatal(err)
	}
	// Created sessions hit the store immediately (round-robin create
	// on one replica, affinity routing to another).
	if _, err := store.Get(id); err != nil {
		t.Fatalf("create did not write through: %v", err)
	}

	var fp uint64
	err = m.With(id, func(sess *Session) error {
		hits, err := sess.Query(st.Query)
		if err != nil {
			return err
		}
		if err := sess.Observe(ilog.Event{
			SessionID: id, Action: ilog.ActionClickKeyframe, ShotID: hits.IDs()[0],
		}); err != nil {
			return err
		}
		fp = sess.EvidenceFingerprint()
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}

	// A second manager over a *fresh* system and the same store (a
	// restarted or sibling replica) restores the session on first
	// touch with the identical fingerprint.
	sys2, err := NewSystemFromCollection(arch.Collection, Config{UseImplicit: true})
	if err != nil {
		t.Fatal(err)
	}
	m2 := newStoreManager(t, sys2, store, ManagerOptions{})
	err = m2.With(id, func(sess *Session) error {
		if got := sess.EvidenceFingerprint(); got != fp {
			return fmt.Errorf("restored fingerprint %x, want %x", got, fp)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if s := m2.Stats(); s.Restored != 1 {
		t.Fatalf("Restored = %d, want 1", s.Restored)
	}
}

func TestManagerRefreshAdoptsNewerState(t *testing.T) {
	// Replica A creates the session, replica B (sharing the store)
	// owns and mutates it, then traffic fails back to A: A must serve
	// B's state, not its stale RAM copy.
	arch, sys := fixture(t, Config{UseImplicit: true})
	st := arch.Truth.SearchTopics[0]
	store := sessionstore.NewMemoryStore()
	a := newStoreManager(t, sys, store, ManagerOptions{})
	b := newStoreManager(t, sys, store, ManagerOptions{})

	id, err := a.Create(nil)
	if err != nil {
		t.Fatal(err)
	}
	var fp uint64
	err = b.With(id, func(sess *Session) error {
		hits, err := sess.Query(st.Query)
		if err != nil {
			return err
		}
		for i := 0; i < 2; i++ {
			if err := sess.Observe(ilog.Event{
				SessionID: id, Action: ilog.ActionClickKeyframe, ShotID: hits.IDs()[i],
			}); err != nil {
				return err
			}
		}
		fp = sess.EvidenceFingerprint()
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if fp == 0 {
		t.Fatal("evidence fingerprint still zero after feedback")
	}
	err = a.With(id, func(sess *Session) error {
		if got := sess.EvidenceFingerprint(); got != fp {
			return fmt.Errorf("replica A served stale state: fingerprint %x, want %x", got, fp)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}

	// Deletion propagates through the store too.
	if err := b.Delete(id); err != nil {
		t.Fatal(err)
	}
	if err := a.With(id, func(*Session) error { return nil }); !errors.Is(err, ErrSessionNotFound) {
		t.Fatalf("deleted-elsewhere session still served: err = %v", err)
	}
}

func TestManagerEvictionFlushesDirty(t *testing.T) {
	arch, sys := fixture(t, Config{UseImplicit: true})
	st := arch.Truth.SearchTopics[0]
	fs := &failingStore{SessionStore: sessionstore.NewMemoryStore()}
	var mu sync.Mutex
	now := time.Unix(1_200_000_000, 0)
	clock := func() time.Time {
		mu.Lock()
		defer mu.Unlock()
		return now
	}
	m := newStoreManager(t, sys, fs, ManagerOptions{
		TTL: time.Minute, SweepInterval: time.Hour, Now: clock,
	})

	id, err := m.Create(nil)
	if err != nil {
		t.Fatal(err)
	}
	// Store goes down; the mutation stays resident and dirty.
	fs.failPuts = true
	err = m.With(id, func(sess *Session) error {
		hits, err := sess.Query(st.Query)
		if err != nil {
			return err
		}
		return sess.Observe(ilog.Event{
			SessionID: id, Action: ilog.ActionClickKeyframe, ShotID: hits.IDs()[0],
		})
	})
	if err != nil {
		t.Fatal(err)
	}
	if s := m.Stats(); s.PersistErrors == 0 {
		t.Fatal("failed write-through not counted")
	}

	// Store recovers; TTL eviction must flush the dirty evidence
	// before dropping the RAM copy.
	fs.failPuts = false
	mu.Lock()
	now = now.Add(2 * time.Minute)
	mu.Unlock()
	if n := m.Sweep(); n != 1 {
		t.Fatalf("Sweep evicted %d sessions, want 1", n)
	}
	data, err := fs.SessionStore.Get(id)
	if err != nil {
		t.Fatalf("evicted dirty session not flushed: %v", err)
	}
	restored, err := sys.RestoreSession(data)
	if err != nil {
		t.Fatal(err)
	}
	if restored.EvidenceCount() != 1 {
		t.Fatalf("flushed state has %d evidence, want 1", restored.EvidenceCount())
	}

	// And the evicted session is transparently restored on next touch.
	err = m.With(id, func(sess *Session) error {
		if sess.EvidenceCount() != 1 {
			return fmt.Errorf("restored session has %d evidence", sess.EvidenceCount())
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestManagerDrain(t *testing.T) {
	arch, sys := fixture(t, Config{UseImplicit: true})
	st := arch.Truth.SearchTopics[0]
	fs := &failingStore{SessionStore: sessionstore.NewMemoryStore()}
	m := newStoreManager(t, sys, fs, ManagerOptions{})

	id, err := m.Create(nil)
	if err != nil {
		t.Fatal(err)
	}
	// Make the session dirty (store down during the mutation), then
	// heal the store: Drain must flush it.
	fs.failPuts = true
	err = m.With(id, func(sess *Session) error {
		hits, err := sess.Query(st.Query)
		if err != nil {
			return err
		}
		return sess.Observe(ilog.Event{
			SessionID: id, Action: ilog.ActionClickKeyframe, ShotID: hits.IDs()[0],
		})
	})
	if err != nil {
		t.Fatal(err)
	}
	fs.failPuts = false

	flushed, err := m.Drain()
	if err != nil {
		t.Fatalf("Drain: %v", err)
	}
	if flushed != 1 {
		t.Fatalf("Drain flushed %d, want 1", flushed)
	}
	if !m.Draining() {
		t.Fatal("Draining() false after Drain")
	}

	// Draining refuses anything session-touching...
	if _, err := m.Create(nil); !errors.Is(err, ErrDraining) {
		t.Fatalf("Create while draining: %v", err)
	}
	if err := m.With(id, func(*Session) error { return nil }); !errors.Is(err, ErrDraining) {
		t.Fatalf("With while draining: %v", err)
	}
	if err := m.Delete(id); !errors.Is(err, ErrDraining) {
		t.Fatalf("Delete while draining: %v", err)
	}
	// ...but read-only introspection stays up for ops.
	if err := m.Inspect(id, func(*Session) error { return nil }); err != nil {
		t.Fatalf("Inspect while draining: %v", err)
	}

	// The flushed state is adoptable by another manager.
	m2 := newStoreManager(t, sys, fs.SessionStore, ManagerOptions{})
	err = m2.With(id, func(sess *Session) error {
		if sess.EvidenceCount() != 1 {
			return fmt.Errorf("adopted session has %d evidence", sess.EvidenceCount())
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

// stereotypes are deterministic per-iteration interaction scripts
// standing in for the paper's user types: which hits get which
// implicit actions after each result page.
var stereotypes = map[string]func(id string, ids []string, step int) []ilog.Event{
	"clicker": func(id string, ids []string, step int) []ilog.Event {
		var evs []ilog.Event
		for i := 0; i < 2 && i < len(ids); i++ {
			evs = append(evs, ilog.Event{
				SessionID: id, Action: ilog.ActionClickKeyframe, ShotID: ids[i], Rank: i,
			})
		}
		return evs
	},
	"player": func(id string, ids []string, step int) []ilog.Event {
		if len(ids) == 0 {
			return nil
		}
		return []ilog.Event{{
			SessionID: id, Action: ilog.ActionPlay, ShotID: ids[0],
			Seconds: float64(3 + step%5),
		}}
	},
	"mixed": func(id string, ids []string, step int) []ilog.Event {
		var evs []ilog.Event
		if len(ids) > 0 {
			evs = append(evs, ilog.Event{
				SessionID: id, Action: ilog.ActionHighlight, ShotID: ids[0],
			})
		}
		if len(ids) > 2 && step%2 == 1 {
			evs = append(evs, ilog.Event{
				SessionID: id, Action: ilog.ActionPlay, ShotID: ids[2], Seconds: 6,
			})
		}
		return evs
	},
}

// driveIteration runs one study iteration (query + stereotype
// feedback) and returns the ranking it produced.
func driveIteration(sess *Session, query, stereo string, step int) ([]string, error) {
	hits, err := sess.Query(query)
	if err != nil {
		return nil, err
	}
	ids := hits.IDs()
	for _, e := range stereotypes[stereo](sess.ID(), ids, step) {
		if err := sess.Observe(e); err != nil {
			return nil, err
		}
	}
	return ids, nil
}

// TestKillRestartRoundTrip is the subsystem's core promise: a session
// interrupted mid-study by a process kill and resumed from the journal
// by a fresh System finishes with an EvidenceFingerprint and a
// next-query ranking bit-identical to the uninterrupted run — across
// seeds and interaction stereotypes.
func TestKillRestartRoundTrip(t *testing.T) {
	const totalIters, killAfter = 6, 3
	cfg := Config{UseImplicit: true}
	for _, seed := range []int64{11, 42} {
		arch, err := synth.Generate(synth.TinyConfig(), seed)
		if err != nil {
			t.Fatal(err)
		}
		queries := make([]string, totalIters)
		for i := range queries {
			queries[i] = arch.Truth.SearchTopics[i%len(arch.Truth.SearchTopics)].Query
		}
		for stereo := range stereotypes {
			t.Run(fmt.Sprintf("seed%d/%s", seed, stereo), func(t *testing.T) {
				path := filepath.Join(t.TempDir(), "sessions.jnl")

				// Phase 1: replica 1 runs the first half of the study,
				// then "crashes" (no Close, no flush — write-through
				// with per-write fsync already journaled every step).
				sys1, err := NewSystemFromCollection(arch.Collection, cfg)
				if err != nil {
					t.Fatal(err)
				}
				store1, err := sessionstore.OpenJournal(path, sessionstore.WithSyncInterval(0))
				if err != nil {
					t.Fatal(err)
				}
				m1, err := NewSessionManager(sys1, ManagerOptions{Store: store1})
				if err != nil {
					t.Fatal(err)
				}
				id, err := m1.Create(nil)
				if err != nil {
					t.Fatal(err)
				}
				for i := 0; i < killAfter; i++ {
					err := m1.With(id, func(sess *Session) error {
						_, err := driveIteration(sess, queries[i], stereo, i)
						return err
					})
					if err != nil {
						t.Fatal(err)
					}
				}
				// Simulate the kill: abandon the manager, release only
				// the file handle so the journal can be reopened.
				store1.Close()

				// Phase 2: a fresh replica adopts the session from the
				// journal and finishes the study.
				sys2, err := NewSystemFromCollection(arch.Collection, cfg)
				if err != nil {
					t.Fatal(err)
				}
				store2, err := sessionstore.OpenJournal(path, sessionstore.WithSyncInterval(0))
				if err != nil {
					t.Fatal(err)
				}
				defer store2.Close()
				m2, err := NewSessionManager(sys2, ManagerOptions{Store: store2})
				if err != nil {
					t.Fatal(err)
				}
				defer m2.Close()
				var gotFP uint64
				var gotRank []string
				for i := killAfter; i < totalIters; i++ {
					err := m2.With(id, func(sess *Session) error {
						rank, err := driveIteration(sess, queries[i], stereo, i)
						if err != nil {
							return err
						}
						gotFP = sess.EvidenceFingerprint()
						gotRank = rank
						return nil
					})
					if err != nil {
						t.Fatal(err)
					}
				}

				// Reference: the same study uninterrupted on one system.
				refSys, err := NewSystemFromCollection(arch.Collection, cfg)
				if err != nil {
					t.Fatal(err)
				}
				ref := refSys.NewSession(id, nil)
				var refRank []string
				for i := 0; i < totalIters; i++ {
					refRank, err = driveIteration(ref, queries[i], stereo, i)
					if err != nil {
						t.Fatal(err)
					}
				}
				if gotFP != ref.EvidenceFingerprint() {
					t.Fatalf("fingerprint after kill/restart %x, uninterrupted %x",
						gotFP, ref.EvidenceFingerprint())
				}
				if !reflect.DeepEqual(gotRank, refRank) {
					t.Fatal("final ranking differs from uninterrupted run")
				}
				if s := m2.Stats(); s.Restored != 1 {
					t.Fatalf("adopting replica Restored = %d, want 1", s.Restored)
				}
			})
		}
	}
}
