package core

import (
	"testing"

	"repro/internal/collection"
	"repro/internal/eval"
	"repro/internal/ilog"
	"repro/internal/profile"
	"repro/internal/synth"
)

// fixture builds a tiny synthetic archive and a system over it.
func fixture(t testing.TB, cfg Config) (*synth.Archive, *System) {
	t.Helper()
	arch, err := synth.Generate(synth.TinyConfig(), 11)
	if err != nil {
		t.Fatal(err)
	}
	sys, err := NewSystemFromCollection(arch.Collection, cfg)
	if err != nil {
		t.Fatal(err)
	}
	return arch, sys
}

// judgments converts a topic's qrels into eval.Judgments.
func judgments(arch *synth.Archive, topicID int) eval.Judgments {
	j := eval.Judgments{}
	for shot, g := range arch.Truth.Qrels[topicID] {
		j[string(shot)] = g
	}
	return j
}

func TestPresets(t *testing.T) {
	for _, name := range Presets() {
		cfg, err := Preset(name)
		if err != nil {
			t.Fatalf("Preset(%s): %v", name, err)
		}
		switch name {
		case PresetBaseline:
			if cfg.UseProfile || cfg.UseImplicit {
				t.Error("baseline should adapt nothing")
			}
		case PresetCombined:
			if !cfg.UseProfile || !cfg.UseImplicit {
				t.Error("combined should adapt everything")
			}
		}
	}
	if _, err := Preset("quantum"); err == nil {
		t.Error("unknown preset accepted")
	}
}

func TestConfigValidation(t *testing.T) {
	arch, _ := fixture(t, Config{})
	bad := []Config{
		{K: -1},
		{ProfileAlpha: -0.1},
		{ProfileLearnRate: 2},
		{ExpandTerms: -1},
		{ExpandBeta: -1},
	}
	for i, cfg := range bad {
		if _, err := NewSystemFromCollection(arch.Collection, cfg); err == nil {
			t.Errorf("bad config %d accepted", i)
		}
	}
	if _, err := NewSystem(nil, nil, Config{}); err == nil {
		t.Error("nil wiring accepted")
	}
}

func TestBuildIndexShapes(t *testing.T) {
	arch, sys := fixture(t, Config{})
	ix := sys.Engine().Index()
	if ix.NumDocs() != arch.Collection.NumShots() {
		t.Errorf("indexed %d docs for %d shots", ix.NumDocs(), arch.Collection.NumShots())
	}
	if ix.NumTerms(1) == 0 { // FieldConcept
		t.Error("no concepts indexed")
	}
}

func TestSearchOnceFindsTopicShots(t *testing.T) {
	arch, sys := fixture(t, Config{})
	okTopics := 0
	for _, st := range arch.Truth.SearchTopics {
		res, err := sys.SearchOnce(st.Query)
		if err != nil {
			t.Fatal(err)
		}
		m := eval.Compute(res.IDs(), judgments(arch, st.ID))
		if m.AP > 0.05 {
			okTopics++
		}
	}
	if okTopics < len(arch.Truth.SearchTopics)/2 {
		t.Errorf("baseline found signal on only %d/%d topics", okTopics, len(arch.Truth.SearchTopics))
	}
}

func TestImplicitFeedbackImprovesRanking(t *testing.T) {
	arch, sys := fixture(t, Config{UseImplicit: true})
	baseSys, err := NewSystemFromCollection(arch.Collection, Config{})
	if err != nil {
		t.Fatal(err)
	}
	improvedSum, baseSum := 0.0, 0.0
	for _, st := range arch.Truth.SearchTopics {
		judg := judgments(arch, st.ID)

		base, err := baseSys.SearchOnce(st.Query)
		if err != nil {
			t.Fatal(err)
		}
		baseSum += eval.Compute(base.IDs(), judg).AP

		sess := sys.NewSession("s-"+st.Query, nil)
		res, err := sess.Query(st.Query)
		if err != nil {
			t.Fatal(err)
		}
		// Feed clicks+plays on the relevant shots in the first page —
		// ideal implicit feedback.
		fed := 0
		for _, h := range res.Hits {
			if judg[h.ID] >= 1 && fed < 5 {
				fed++
				err := sess.ObserveAll([]ilog.Event{
					{SessionID: sess.ID(), Action: ilog.ActionClickKeyframe, ShotID: h.ID, TopicID: st.ID},
					{SessionID: sess.ID(), Action: ilog.ActionPlay, ShotID: h.ID, Seconds: 20, TopicID: st.ID},
				})
				if err != nil {
					t.Fatal(err)
				}
			}
		}
		adapted, err := sess.Query(st.Query)
		if err != nil {
			t.Fatal(err)
		}
		improvedSum += eval.Compute(adapted.IDs(), judg).AP
	}
	if improvedSum <= baseSum {
		t.Errorf("implicit adaptation MAP sum %v not above baseline %v", improvedSum, baseSum)
	}
}

func TestProfileRerankingPromotesLikedCategory(t *testing.T) {
	arch, sys := fixture(t, Config{UseProfile: true, ProfileAlpha: 0.5})
	st := arch.Truth.SearchTopics[0]
	liked := st.Category

	love := profile.New("fan").SetInterest(liked, 1.0)
	hate := profile.New("hater").SetInterest(liked, 0.0)

	catAt := func(ids []string, k int) (likedCount int) {
		for i := 0; i < k && i < len(ids); i++ {
			story := arch.Collection.StoryOfShot(collection.ShotID(ids[i]))
			if story != nil && story.Category == liked {
				likedCount++
			}
		}
		return likedCount
	}
	// Query with vocabulary from the liked category plus another so
	// both categories appear in the candidates.
	other := arch.Truth.SearchTopics[1]
	mixedQuery := st.Query + " " + other.Query

	resLove, err := sys.NewSession("s1", love).Query(mixedQuery)
	if err != nil {
		t.Fatal(err)
	}
	resHate, err := sys.NewSession("s2", hate).Query(mixedQuery)
	if err != nil {
		t.Fatal(err)
	}
	if catAt(resLove.IDs(), 10) <= catAt(resHate.IDs(), 10) {
		t.Errorf("liked category not promoted: love=%d hate=%d",
			catAt(resLove.IDs(), 10), catAt(resHate.IDs(), 10))
	}
}

func TestNeutralProfileIsNoOp(t *testing.T) {
	arch, sys := fixture(t, Config{UseProfile: true})
	baseSys, err := NewSystemFromCollection(arch.Collection, Config{})
	if err != nil {
		t.Fatal(err)
	}
	st := arch.Truth.SearchTopics[2]
	a, err := sys.NewSession("s", nil).Query(st.Query)
	if err != nil {
		t.Fatal(err)
	}
	b, err := baseSys.SearchOnce(st.Query)
	if err != nil {
		t.Fatal(err)
	}
	if len(a.Hits) != len(b.Hits) {
		t.Fatalf("result sizes differ: %d vs %d", len(a.Hits), len(b.Hits))
	}
	for i := range a.Hits {
		if a.Hits[i].ID != b.Hits[i].ID {
			t.Fatalf("neutral profile changed ranking at %d: %s vs %s", i, a.Hits[i].ID, b.Hits[i].ID)
		}
	}
}

func TestObserveValidatesAndDrifts(t *testing.T) {
	arch, sys := fixture(t, Config{ProfileLearnRate: 0.3})
	st := arch.Truth.SearchTopics[0]
	rel := arch.Truth.Qrels.Relevant(st.ID, 1)
	sess := sys.NewSession("s", nil)

	if err := sess.Observe(ilog.Event{}); err == nil {
		t.Error("invalid event accepted")
	}
	before := sess.User().Interest(st.Category)
	err := sess.Observe(ilog.Event{
		SessionID: "s", Action: ilog.ActionClickKeyframe,
		ShotID: string(rel[0]), TopicID: st.ID,
	})
	if err != nil {
		t.Fatal(err)
	}
	after := sess.User().Interest(st.Category)
	if after <= before {
		t.Errorf("positive evidence should raise interest: %v -> %v", before, after)
	}
	// Negative rating drifts down.
	err = sess.Observe(ilog.Event{
		SessionID: "s", Action: ilog.ActionRate, Value: -1,
		ShotID: string(rel[0]), TopicID: st.ID,
	})
	if err != nil {
		t.Fatal(err)
	}
	if sess.User().Interest(st.Category) >= after {
		t.Error("negative rating should lower interest")
	}
}

func TestSessionBookkeeping(t *testing.T) {
	arch, sys := fixture(t, Config{UseImplicit: true})
	st := arch.Truth.SearchTopics[0]
	sess := sys.NewSession("sess-1", nil)
	if sess.ID() != "sess-1" || sess.Step() != 0 {
		t.Error("fresh session state wrong")
	}
	res, err := sess.Query(st.Query)
	if err != nil {
		t.Fatal(err)
	}
	if sess.Step() != 1 || sess.LastQuery() != st.Query {
		t.Error("step/lastQuery not updated")
	}
	if sess.SeenShots() != len(res.Hits) {
		t.Errorf("seen = %d, hits = %d", sess.SeenShots(), len(res.Hits))
	}
	if len(res.Hits) > 0 && !sess.HasSeen(res.Hits[0].ID) {
		t.Error("HasSeen false for returned hit")
	}
	// Query events are accepted but contribute no evidence.
	if err := sess.Observe(ilog.Event{SessionID: "sess-1", Action: ilog.ActionQuery, Query: "x"}); err != nil {
		t.Fatal(err)
	}
	if sess.EvidenceCount() != 0 {
		t.Error("query event became evidence")
	}
	sess.Reset()
	if sess.Step() != 0 || sess.SeenShots() != 0 || sess.EvidenceCount() != 0 || sess.LastQuery() != "" {
		t.Error("Reset incomplete")
	}
}

func TestSearchWithConcepts(t *testing.T) {
	arch, sys := fixture(t, Config{})
	st := arch.Truth.SearchTopics[0]
	topic := arch.Truth.Topics[st.TopicID]
	concepts := make([]string, len(topic.Concepts))
	for i, c := range topic.Concepts {
		concepts[i] = string(c)
	}
	judg := judgments(arch, st.ID)

	textOnly, err := sys.SearchWithConcepts(st.Query, nil, 0)
	if err != nil {
		t.Fatal(err)
	}
	fused, err := sys.SearchWithConcepts(st.Query, concepts, 0.5)
	if err != nil {
		t.Fatal(err)
	}
	if len(fused.Hits) == 0 {
		t.Fatal("fusion returned nothing")
	}
	_ = eval.Compute(textOnly.IDs(), judg)
	if _, err := sys.SearchWithConcepts(st.Query, concepts, -1); err == nil {
		t.Error("negative concept weight accepted")
	}
}

func TestMassExposed(t *testing.T) {
	arch, sys := fixture(t, Config{UseImplicit: true})
	sess := sys.NewSession("s", nil)
	shotID := string(arch.Collection.ShotIDs()[0])
	sess.Observe(ilog.Event{SessionID: "s", Action: ilog.ActionPlay, ShotID: shotID, Seconds: 10})
	if m := sess.Mass(); m[shotID] <= 0 {
		t.Errorf("mass = %v", m)
	}
}
