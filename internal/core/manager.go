package core

import (
	"crypto/rand"
	"encoding/hex"
	"errors"
	"fmt"
	"hash/fnv"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/profile"
)

// Manager errors. Callers (the web API, load generators) branch on
// these with errors.Is.
var (
	// ErrSessionNotFound reports an unknown, deleted, or expired session.
	ErrSessionNotFound = errors.New("core: session not found")
	// ErrTooManySessions reports that MaxSessions is reached.
	ErrTooManySessions = errors.New("core: too many sessions")
	// ErrManagerClosed reports use after Close.
	ErrManagerClosed = errors.New("core: session manager closed")
)

// numShards splits the session table so concurrent session creation,
// lookup and eviction contend on 1/numShards of the keyspace instead
// of one global mutex. Must be a power of two.
const numShards = 32

// ManagerOptions tunes a SessionManager. The zero value means: no
// idle eviction, unbounded sessions, no background sweeper.
type ManagerOptions struct {
	// TTL evicts sessions idle for longer than this. 0 disables
	// expiry entirely.
	TTL time.Duration
	// SweepInterval is how often the background sweeper scans for
	// expired sessions. 0 defaults to TTL/4 (no sweeper runs when TTL
	// is 0). Expired sessions are also rejected lazily on access, so
	// the sweeper only bounds the memory held by abandoned sessions.
	SweepInterval time.Duration
	// MaxSessions caps live sessions (0 = unbounded). Create returns
	// ErrTooManySessions at the cap.
	MaxSessions int
	// Now overrides the clock (test hook; nil = time.Now).
	Now func() time.Time
}

// SessionManager owns the session table for a System: it creates
// sessions with unique IDs, routes callers to them under per-session
// locks, and expires idle ones. Unlike a bare map+mutex, two sessions
// never serialize on each other's queries: the table is sharded and
// each session carries its own lock, so thousands of sessions can
// search concurrently while each individual Session still sees the
// single-threaded access it requires. Safe for concurrent use.
type SessionManager struct {
	sys  *System
	opts ManagerOptions
	now  func() time.Time

	shards [numShards]managerShard

	closeOnce sync.Once
	closed    chan struct{}
	sweepWG   sync.WaitGroup

	// live counts resident sessions; the MaxSessions cap is enforced
	// on it with compare-and-swap so concurrent Creates cannot
	// overshoot.
	live atomic.Int64

	stats struct {
		sync.Mutex
		created int64
		evicted int64
	}
}

// managerShard is one slice of the session table.
type managerShard struct {
	mu       sync.RWMutex
	sessions map[string]*managedSession
}

// managedSession pairs a Session with its own lock. The inner Session
// is only touched while holding mu; lastUsed and gone are guarded by
// it too.
type managedSession struct {
	mu       sync.Mutex
	sess     *Session
	lastUsed time.Time
	gone     bool
}

// ManagerStats is a point-in-time counter snapshot.
type ManagerStats struct {
	// Live is the number of resident sessions (may include expired
	// ones the sweeper has not collected yet).
	Live int
	// Created counts sessions ever created.
	Created int64
	// Evicted counts sessions removed by TTL expiry (not by Delete).
	Evicted int64
}

// NewSessionManager builds a manager over a system and starts the
// background sweeper when opts.TTL is set. Callers should Close it to
// stop the sweeper.
func NewSessionManager(sys *System, opts ManagerOptions) (*SessionManager, error) {
	if sys == nil {
		return nil, fmt.Errorf("core: nil system")
	}
	if opts.TTL < 0 || opts.SweepInterval < 0 || opts.MaxSessions < 0 {
		return nil, fmt.Errorf("core: negative manager option")
	}
	m := &SessionManager{sys: sys, opts: opts, closed: make(chan struct{})}
	m.now = opts.Now
	if m.now == nil {
		m.now = time.Now
	}
	for i := range m.shards {
		m.shards[i].sessions = make(map[string]*managedSession)
	}
	if opts.TTL > 0 {
		interval := opts.SweepInterval
		if interval == 0 {
			interval = opts.TTL / 4
		}
		if interval <= 0 {
			interval = time.Second
		}
		m.sweepWG.Add(1)
		go m.sweepLoop(interval)
	}
	return m, nil
}

// System returns the system sessions are created against.
func (m *SessionManager) System() *System { return m.sys }

// shardOf routes an ID to its shard.
func (m *SessionManager) shardOf(id string) *managerShard {
	h := fnv.New32a()
	_, _ = h.Write([]byte(id))
	return &m.shards[h.Sum32()&(numShards-1)]
}

// newSessionID draws a random 128-bit identifier.
func newSessionID() (string, error) {
	var b [16]byte
	if _, err := rand.Read(b[:]); err != nil {
		return "", fmt.Errorf("core: session id: %w", err)
	}
	return "s" + hex.EncodeToString(b[:]), nil
}

// isClosed reports whether Close has been called.
func (m *SessionManager) isClosed() bool {
	select {
	case <-m.closed:
		return true
	default:
		return false
	}
}

// reserveSlot claims one unit of MaxSessions capacity with a CAS
// loop, so racing Creates can never overshoot the cap.
func (m *SessionManager) reserveSlot() bool {
	max := int64(m.opts.MaxSessions)
	if max <= 0 {
		m.live.Add(1)
		return true
	}
	for {
		n := m.live.Load()
		if n >= max {
			return false
		}
		if m.live.CompareAndSwap(n, n+1) {
			return true
		}
	}
}

// Create starts a session for user (nil = fresh neutral profile) and
// returns its ID.
func (m *SessionManager) Create(user *profile.Profile) (string, error) {
	if m.isClosed() {
		return "", ErrManagerClosed
	}
	if !m.reserveSlot() {
		// Give abandoned sessions a chance to make room before
		// refusing.
		if m.Sweep() == 0 || !m.reserveSlot() {
			return "", ErrTooManySessions
		}
	}
	id, err := newSessionID()
	if err != nil {
		m.live.Add(-1)
		return "", err
	}
	ms := &managedSession{sess: m.sys.NewSession(id, user), lastUsed: m.now()}
	sh := m.shardOf(id)
	sh.mu.Lock()
	sh.sessions[id] = ms
	sh.mu.Unlock()
	m.stats.Lock()
	m.stats.created++
	m.stats.Unlock()
	return id, nil
}

// lookup finds a live managed session, collecting it instead when it
// has expired.
func (m *SessionManager) lookup(id string) (*managedSession, error) {
	sh := m.shardOf(id)
	sh.mu.RLock()
	ms := sh.sessions[id]
	sh.mu.RUnlock()
	if ms == nil {
		return nil, ErrSessionNotFound
	}
	if ttl := m.opts.TTL; ttl > 0 {
		ms.mu.Lock()
		expired := !ms.gone && m.now().Sub(ms.lastUsed) > ttl
		if expired {
			ms.gone = true
		}
		ms.mu.Unlock()
		if expired {
			sh.mu.Lock()
			if sh.sessions[id] == ms {
				delete(sh.sessions, id)
				m.live.Add(-1)
			}
			sh.mu.Unlock()
			m.stats.Lock()
			m.stats.evicted++
			m.stats.Unlock()
			return nil, ErrSessionNotFound
		}
	}
	return ms, nil
}

// With runs fn holding id's per-session lock; the *Session must not
// escape fn. Touches the idle clock. Returns ErrSessionNotFound for
// unknown, deleted, or expired sessions, otherwise fn's error.
func (m *SessionManager) With(id string, fn func(*Session) error) error {
	return m.withSession(id, fn, true)
}

// Inspect is With without touching the idle clock: read-only
// introspection (ops listings, metrics) must not keep otherwise
// abandoned sessions alive. Like With it serialises on the session's
// lock and returns ErrSessionNotFound for unknown, deleted, or
// expired sessions — an expired session is collected on inspection,
// not resurrected.
func (m *SessionManager) Inspect(id string, fn func(*Session) error) error {
	return m.withSession(id, fn, false)
}

func (m *SessionManager) withSession(id string, fn func(*Session) error, touch bool) error {
	if m.isClosed() {
		return ErrManagerClosed
	}
	ms, err := m.lookup(id)
	if err != nil {
		return err
	}
	ms.mu.Lock()
	defer ms.mu.Unlock()
	if ms.gone {
		return ErrSessionNotFound
	}
	if touch {
		ms.lastUsed = m.now()
	}
	return fn(ms.sess)
}

// Delete ends a session. Concurrent operations already inside With
// finish first (they hold the session lock).
func (m *SessionManager) Delete(id string) error {
	if m.isClosed() {
		return ErrManagerClosed
	}
	ms, err := m.lookup(id)
	if err != nil {
		return err
	}
	ms.mu.Lock()
	wasGone := ms.gone
	ms.gone = true
	ms.mu.Unlock()
	if wasGone {
		return ErrSessionNotFound
	}
	sh := m.shardOf(id)
	sh.mu.Lock()
	if sh.sessions[id] == ms {
		delete(sh.sessions, id)
		m.live.Add(-1)
	}
	sh.mu.Unlock()
	return nil
}

// Len reports the number of resident sessions (expired-but-unswept
// sessions count until collected).
func (m *SessionManager) Len() int {
	n := 0
	for i := range m.shards {
		sh := &m.shards[i]
		sh.mu.RLock()
		n += len(sh.sessions)
		sh.mu.RUnlock()
	}
	return n
}

// SessionInfo is one live session's directory entry.
type SessionInfo struct {
	// ID is the session identifier.
	ID string
	// LastUsed is when the session was last touched through the
	// manager. A session caught mid-operation (its lock held) is
	// reported with the listing time instead: it is in use right now,
	// and List does not wait behind it.
	LastUsed time.Time
}

// List snapshots the resident sessions, sorted by ID so pagination
// over successive calls is stable. Expired-but-unswept and deleted
// sessions are excluded; sessions busy in an operation are included
// as just-touched (see SessionInfo.LastUsed). O(live sessions);
// intended for ops/debug listing, not hot paths.
func (m *SessionManager) List() []SessionInfo {
	ttl := m.opts.TTL
	now := m.now()
	out := make([]SessionInfo, 0, 64)
	for i := range m.shards {
		sh := &m.shards[i]
		sh.mu.RLock()
		for id, ms := range m.shards[i].sessions {
			// A session whose lock is held is mid-operation — live by
			// definition — so report it as in use rather than stalling
			// the shard behind it (same reasoning as Sweep).
			if !ms.mu.TryLock() {
				out = append(out, SessionInfo{ID: id, LastUsed: now})
				continue
			}
			gone, last := ms.gone, ms.lastUsed
			ms.mu.Unlock()
			if gone || (ttl > 0 && now.Sub(last) > ttl) {
				continue
			}
			out = append(out, SessionInfo{ID: id, LastUsed: last})
		}
		sh.mu.RUnlock()
	}
	sort.Slice(out, func(a, b int) bool { return out[a].ID < out[b].ID })
	return out
}

// Stats snapshots the manager's counters.
func (m *SessionManager) Stats() ManagerStats {
	m.stats.Lock()
	defer m.stats.Unlock()
	return ManagerStats{Live: m.Len(), Created: m.stats.created, Evicted: m.stats.evicted}
}

// Sweep collects every expired session now and reports how many it
// removed. A no-op (returning 0) when TTL is disabled.
func (m *SessionManager) Sweep() int {
	ttl := m.opts.TTL
	if ttl <= 0 {
		return 0
	}
	now := m.now()
	removed := 0
	for i := range m.shards {
		sh := &m.shards[i]
		// Collect candidates under the read lock using TryLock: a
		// session whose lock is held is mid-operation — by definition
		// not idle — so skipping it is correct and keeps the sweeper
		// from stalling the shard behind a long-running query.
		sh.mu.RLock()
		var stale []*managedSession
		var staleIDs []string
		for id, ms := range sh.sessions {
			if !ms.mu.TryLock() {
				continue
			}
			if !ms.gone && now.Sub(ms.lastUsed) > ttl {
				ms.gone = true
				stale = append(stale, ms)
				staleIDs = append(staleIDs, id)
			}
			ms.mu.Unlock()
		}
		sh.mu.RUnlock()
		if len(stale) == 0 {
			continue
		}
		sh.mu.Lock()
		for j, id := range staleIDs {
			if sh.sessions[id] == stale[j] {
				delete(sh.sessions, id)
				m.live.Add(-1)
				removed++
			}
		}
		sh.mu.Unlock()
	}
	if removed > 0 {
		m.stats.Lock()
		m.stats.evicted += int64(removed)
		m.stats.Unlock()
	}
	return removed
}

// sweepLoop periodically collects expired sessions until Close.
func (m *SessionManager) sweepLoop(interval time.Duration) {
	defer m.sweepWG.Done()
	t := time.NewTicker(interval)
	defer t.Stop()
	for {
		select {
		case <-m.closed:
			return
		case <-t.C:
			m.Sweep()
		}
	}
}

// Close stops the sweeper and rejects further operations. Idempotent.
func (m *SessionManager) Close() error {
	m.closeOnce.Do(func() { close(m.closed) })
	m.sweepWG.Wait()
	return nil
}
