package core

import (
	"bytes"
	"context"
	"crypto/rand"
	"encoding/hex"
	"errors"
	"fmt"
	"hash/fnv"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/profile"
	"repro/internal/sessionstore"
	"repro/internal/trace"
)

// Manager errors. Callers (the web API, load generators) branch on
// these with errors.Is.
var (
	// ErrSessionNotFound reports an unknown, deleted, or expired session.
	ErrSessionNotFound = errors.New("core: session not found")
	// ErrTooManySessions reports that MaxSessions is reached.
	ErrTooManySessions = errors.New("core: too many sessions")
	// ErrManagerClosed reports use after Close.
	ErrManagerClosed = errors.New("core: session manager closed")
	// ErrDraining reports that the manager is handing its sessions off
	// (graceful shutdown): state is flushed to the store and mutating
	// operations are refused so another replica can adopt cleanly.
	ErrDraining = errors.New("core: session manager draining")
)

// numShards splits the session table so concurrent session creation,
// lookup and eviction contend on 1/numShards of the keyspace instead
// of one global mutex. Must be a power of two.
const numShards = 32

// ManagerOptions tunes a SessionManager. The zero value means: no
// idle eviction, unbounded sessions, no background sweeper.
type ManagerOptions struct {
	// TTL evicts sessions idle for longer than this. 0 disables
	// expiry entirely.
	TTL time.Duration
	// SweepInterval is how often the background sweeper scans for
	// expired sessions. 0 defaults to TTL/4 (no sweeper runs when TTL
	// is 0). Expired sessions are also rejected lazily on access, so
	// the sweeper only bounds the memory held by abandoned sessions.
	SweepInterval time.Duration
	// MaxSessions caps live sessions (0 = unbounded). Create returns
	// ErrTooManySessions at the cap.
	MaxSessions int
	// Now overrides the clock (test hook; nil = time.Now).
	Now func() time.Time
	// Store, when set, makes sessions durable: every mutation is
	// written through (binary snapshot codec), lookups of sessions not
	// resident in RAM restore from the store, and TTL expiry becomes a
	// RAM eviction (flushing unwritten state first) rather than data
	// loss. Several manager processes may share one store; lookups
	// re-read the store so a replica adopting a session after failover
	// always serves the latest persisted state. The manager does not
	// own the store — the caller closes it after Close.
	Store sessionstore.SessionStore
}

// SessionManager owns the session table for a System: it creates
// sessions with unique IDs, routes callers to them under per-session
// locks, and expires idle ones. Unlike a bare map+mutex, two sessions
// never serialize on each other's queries: the table is sharded and
// each session carries its own lock, so thousands of sessions can
// search concurrently while each individual Session still sees the
// single-threaded access it requires. Safe for concurrent use.
type SessionManager struct {
	sys  *System
	opts ManagerOptions
	now  func() time.Time

	shards [numShards]managerShard

	closeOnce sync.Once
	closed    chan struct{}
	sweepWG   sync.WaitGroup

	// draining refuses session-mutating operations while the replica
	// hands its sessions off to the shared store.
	draining atomic.Bool

	// live counts resident sessions; the MaxSessions cap is enforced
	// on it with compare-and-swap so concurrent Creates cannot
	// overshoot.
	live atomic.Int64

	stats struct {
		sync.Mutex
		created      int64
		evicted      int64
		restored     int64
		persisted    int64
		persistFails int64
	}
}

// managerShard is one slice of the session table.
type managerShard struct {
	mu       sync.RWMutex
	sessions map[string]*managedSession
}

// managedSession pairs a Session with its own lock. The inner Session
// is only touched while holding mu; lastUsed and gone are guarded by
// it too.
type managedSession struct {
	mu       sync.Mutex
	sess     *Session
	lastUsed time.Time
	gone     bool
	// dirty marks state the store has not accepted yet (a failed
	// write-through). Eviction flushes only dirty sessions, so a stale
	// RAM copy on one replica can never clobber newer state another
	// replica persisted.
	dirty bool
	// persisted is the session's last state written to or read from
	// the store. Write-through skips the store when the encoding is
	// unchanged, and lookup compares it against the store's current
	// bytes to adopt state mutated by another replica.
	persisted []byte
}

// ManagerStats is a point-in-time counter snapshot.
type ManagerStats struct {
	// Live is the number of resident sessions (may include expired
	// ones the sweeper has not collected yet).
	Live int
	// Created counts sessions ever created.
	Created int64
	// Evicted counts sessions removed from RAM by TTL expiry (not by
	// Delete). With a store configured this is cache eviction, not
	// loss: the state was flushed and a later access restores it.
	Evicted int64
	// Restored counts sessions rebuilt from the store: restarts
	// resuming their own sessions and failovers adopting another
	// replica's (including in-place refreshes of a resident session
	// whose store state another replica advanced).
	Restored int64
	// Persisted counts successful store write-throughs.
	Persisted int64
	// PersistErrors counts failed write-throughs (state stays resident
	// and dirty; eviction retries the flush).
	PersistErrors int64
}

// NewSessionManager builds a manager over a system and starts the
// background sweeper when opts.TTL is set. Callers should Close it to
// stop the sweeper.
func NewSessionManager(sys *System, opts ManagerOptions) (*SessionManager, error) {
	if sys == nil {
		return nil, fmt.Errorf("core: nil system")
	}
	if opts.TTL < 0 || opts.SweepInterval < 0 || opts.MaxSessions < 0 {
		return nil, fmt.Errorf("core: negative manager option")
	}
	m := &SessionManager{sys: sys, opts: opts, closed: make(chan struct{})}
	m.now = opts.Now
	if m.now == nil {
		m.now = time.Now
	}
	for i := range m.shards {
		m.shards[i].sessions = make(map[string]*managedSession)
	}
	if opts.TTL > 0 {
		interval := opts.SweepInterval
		if interval == 0 {
			interval = opts.TTL / 4
		}
		if interval <= 0 {
			interval = time.Second
		}
		m.sweepWG.Add(1)
		go m.sweepLoop(interval)
	}
	return m, nil
}

// System returns the system sessions are created against.
func (m *SessionManager) System() *System { return m.sys }

// shardOf routes an ID to its shard.
func (m *SessionManager) shardOf(id string) *managerShard {
	h := fnv.New32a()
	_, _ = h.Write([]byte(id))
	return &m.shards[h.Sum32()&(numShards-1)]
}

// newSessionID draws a random 128-bit identifier.
func newSessionID() (string, error) {
	var b [16]byte
	if _, err := rand.Read(b[:]); err != nil {
		return "", fmt.Errorf("core: session id: %w", err)
	}
	return "s" + hex.EncodeToString(b[:]), nil
}

// isClosed reports whether Close has been called.
func (m *SessionManager) isClosed() bool {
	select {
	case <-m.closed:
		return true
	default:
		return false
	}
}

// reserveSlot claims one unit of MaxSessions capacity with a CAS
// loop, so racing Creates can never overshoot the cap.
func (m *SessionManager) reserveSlot() bool {
	max := int64(m.opts.MaxSessions)
	if max <= 0 {
		m.live.Add(1)
		return true
	}
	for {
		n := m.live.Load()
		if n >= max {
			return false
		}
		if m.live.CompareAndSwap(n, n+1) {
			return true
		}
	}
}

// persistLocked write-throughs one session's state. Caller holds
// ms.mu. The store is skipped entirely when the encoded state matches
// what the store already holds (read-only touches stay free); a failed
// write leaves the session dirty so eviction retries the flush.
func (m *SessionManager) persistLocked(id string, ms *managedSession) error {
	if m.opts.Store == nil || ms.sess == nil {
		return nil
	}
	state, err := ms.sess.EncodeState()
	if err != nil {
		return err
	}
	if bytes.Equal(state, ms.persisted) {
		return nil
	}
	if err := m.opts.Store.Put(id, state); err != nil {
		ms.dirty = true
		m.stats.Lock()
		m.stats.persistFails++
		m.stats.Unlock()
		return err
	}
	ms.persisted = state
	ms.dirty = false
	m.stats.Lock()
	m.stats.persisted++
	m.stats.Unlock()
	return nil
}

// flushIfDirtyLocked retries a session's failed write-through before
// the session leaves RAM. Only dirty sessions are written: a clean
// copy may be stale relative to another replica's mutations, and
// re-writing it would clobber them.
func (m *SessionManager) flushIfDirtyLocked(id string, ms *managedSession) {
	if ms.dirty {
		_ = m.persistLocked(id, ms)
	}
}

// refreshLocked reconciles a resident session with the store. When
// another replica advanced the session's persisted state (failover and
// fail-back both produce stale RAM copies on the non-owning replica),
// the resident Session is rebuilt from the store's bytes; when the
// store no longer knows the session (deleted elsewhere), it is marked
// gone. A session with unflushed local state is left alone — the store
// is behind it, not ahead. Caller holds ms.mu.
func (m *SessionManager) refreshLocked(id string, ms *managedSession) error {
	if m.opts.Store == nil || ms.dirty {
		return nil
	}
	cur, err := m.opts.Store.Get(id)
	if err != nil {
		if errors.Is(err, sessionstore.ErrNotFound) {
			ms.gone = true
			return ErrSessionNotFound
		}
		// Store unavailable: serve the resident copy.
		return nil
	}
	if bytes.Equal(cur, ms.persisted) {
		return nil
	}
	sess, err := m.sys.RestoreSession(cur)
	if err != nil {
		return fmt.Errorf("core: refresh session %s: %w", id, err)
	}
	ms.sess = sess
	ms.persisted = cur
	m.stats.Lock()
	m.stats.restored++
	m.stats.Unlock()
	return nil
}

// Create starts a session for user (nil = fresh neutral profile) and
// returns its ID. With a store configured the fresh session is written
// through immediately, so any replica sharing the store can serve the
// very next request for it.
func (m *SessionManager) Create(user *profile.Profile) (string, error) {
	if m.isClosed() {
		return "", ErrManagerClosed
	}
	if m.draining.Load() {
		return "", ErrDraining
	}
	if !m.reserveSlot() {
		// Give abandoned sessions a chance to make room before
		// refusing.
		if m.Sweep() == 0 || !m.reserveSlot() {
			return "", ErrTooManySessions
		}
	}
	id, err := newSessionID()
	if err != nil {
		m.live.Add(-1)
		return "", err
	}
	ms := &managedSession{sess: m.sys.NewSession(id, user), lastUsed: m.now()}
	ms.mu.Lock()
	_ = m.persistLocked(id, ms)
	ms.mu.Unlock()
	sh := m.shardOf(id)
	sh.mu.Lock()
	sh.sessions[id] = ms
	sh.mu.Unlock()
	m.stats.Lock()
	m.stats.created++
	m.stats.Unlock()
	return id, nil
}

// restoreFromStore rebuilds a non-resident session from the store
// (restart recovery and failover adoption). Racing restores of the
// same ID converge on whichever inserted first.
func (m *SessionManager) restoreFromStore(id string) (*managedSession, error) {
	if m.opts.Store == nil {
		return nil, ErrSessionNotFound
	}
	data, err := m.opts.Store.Get(id)
	if err != nil {
		return nil, ErrSessionNotFound
	}
	sess, err := m.sys.RestoreSession(data)
	if err != nil {
		return nil, fmt.Errorf("core: restore session %s: %w", id, err)
	}
	if !m.reserveSlot() {
		if m.Sweep() == 0 || !m.reserveSlot() {
			return nil, ErrTooManySessions
		}
	}
	ms := &managedSession{sess: sess, lastUsed: m.now(), persisted: data}
	sh := m.shardOf(id)
	sh.mu.Lock()
	if existing := sh.sessions[id]; existing != nil {
		sh.mu.Unlock()
		m.live.Add(-1)
		return existing, nil
	}
	sh.sessions[id] = ms
	sh.mu.Unlock()
	m.stats.Lock()
	m.stats.restored++
	m.stats.Unlock()
	return ms, nil
}

// lookup finds a live managed session, collecting it instead when it
// has expired. With a store configured a miss (never resident, evicted
// earlier, or created by another replica) falls through to a store
// restore, so TTL expiry and replica failover are both invisible to
// the caller.
func (m *SessionManager) lookup(ctx context.Context, id string) (*managedSession, error) {
	sh := m.shardOf(id)
	sh.mu.RLock()
	ms := sh.sessions[id]
	sh.mu.RUnlock()
	if ms == nil {
		return m.restoreTraced(ctx, id)
	}
	if ttl := m.opts.TTL; ttl > 0 {
		ms.mu.Lock()
		expired := !ms.gone && m.now().Sub(ms.lastUsed) > ttl
		if expired {
			// Evidence must reach the store before the RAM copy goes.
			m.flushIfDirtyLocked(id, ms)
			ms.gone = true
		}
		ms.mu.Unlock()
		if expired {
			sh.mu.Lock()
			if sh.sessions[id] == ms {
				delete(sh.sessions, id)
				m.live.Add(-1)
			}
			sh.mu.Unlock()
			m.stats.Lock()
			m.stats.evicted++
			m.stats.Unlock()
			return m.restoreTraced(ctx, id)
		}
	}
	return ms, nil
}

// restoreTraced wraps a store restore in a "restore" span so traced
// queries show when session state had to be rebuilt from the store
// (first access after eviction, restart, or failover adoption) rather
// than served from RAM. Free when ctx carries no trace.
func (m *SessionManager) restoreTraced(ctx context.Context, id string) (*managedSession, error) {
	_, sp := trace.StartSpan(ctx, "restore")
	ms, err := m.restoreFromStore(id)
	sp.End()
	return ms, err
}

// With runs fn holding id's per-session lock; the *Session must not
// escape fn. Touches the idle clock. Returns ErrSessionNotFound for
// unknown, deleted, or expired sessions, otherwise fn's error.
func (m *SessionManager) With(id string, fn func(*Session) error) error {
	return m.withSession(context.Background(), id, fn, true)
}

// WithContext is With with a caller context: cancellation reaches the
// session's remote work, and an active trace in ctx records a
// "restore" span when the session has to be rebuilt from the store.
// The context is NOT passed to fn — fn receives the session and uses
// Session.QueryContext and friends with the same ctx itself.
func (m *SessionManager) WithContext(ctx context.Context, id string, fn func(*Session) error) error {
	return m.withSession(ctx, id, fn, true)
}

// Inspect is With without touching the idle clock: read-only
// introspection (ops listings, metrics) must not keep otherwise
// abandoned sessions alive. Like With it serialises on the session's
// lock and returns ErrSessionNotFound for unknown, deleted, or
// expired sessions — an expired session is collected on inspection,
// not resurrected.
func (m *SessionManager) Inspect(id string, fn func(*Session) error) error {
	return m.withSession(context.Background(), id, fn, false)
}

func (m *SessionManager) withSession(ctx context.Context, id string, fn func(*Session) error, touch bool) error {
	if m.isClosed() {
		return ErrManagerClosed
	}
	if touch && m.draining.Load() {
		// Reads (Inspect) stay up during drain; anything that touches a
		// session belongs on the replica that adopts it.
		return ErrDraining
	}
	ms, err := m.lookup(ctx, id)
	if err != nil {
		return err
	}
	ms.mu.Lock()
	defer ms.mu.Unlock()
	if ms.gone {
		return ErrSessionNotFound
	}
	// Serve the latest persisted state, not a stale RAM copy — another
	// replica may have owned this session since we last saw it.
	if err := m.refreshLocked(id, ms); err != nil {
		return err
	}
	if touch {
		ms.lastUsed = m.now()
	}
	ferr := fn(ms.sess)
	if touch {
		// Write-through: fn may have mutated evidence even when it
		// errored, and persistLocked is a no-op when nothing changed.
		_ = m.persistLocked(id, ms)
	}
	return ferr
}

// Delete ends a session, in RAM and in the store. Concurrent
// operations already inside With finish first (they hold the session
// lock).
func (m *SessionManager) Delete(id string) error {
	if m.isClosed() {
		return ErrManagerClosed
	}
	if m.draining.Load() {
		return ErrDraining
	}
	ms, err := m.lookup(context.Background(), id)
	if err != nil {
		return err
	}
	ms.mu.Lock()
	wasGone := ms.gone
	ms.gone = true
	ms.mu.Unlock()
	if wasGone {
		return ErrSessionNotFound
	}
	sh := m.shardOf(id)
	sh.mu.Lock()
	if sh.sessions[id] == ms {
		delete(sh.sessions, id)
		m.live.Add(-1)
	}
	sh.mu.Unlock()
	if m.opts.Store != nil {
		// Tombstone the store too, so no replica resurrects it. A
		// failed delete leaves the session restorable — the safe
		// direction.
		_ = m.opts.Store.Delete(id)
	}
	return nil
}

// Len reports the number of resident sessions (expired-but-unswept
// sessions count until collected).
func (m *SessionManager) Len() int {
	n := 0
	for i := range m.shards {
		sh := &m.shards[i]
		sh.mu.RLock()
		n += len(sh.sessions)
		sh.mu.RUnlock()
	}
	return n
}

// SessionInfo is one live session's directory entry.
type SessionInfo struct {
	// ID is the session identifier.
	ID string
	// LastUsed is when the session was last touched through the
	// manager. A session caught mid-operation (its lock held) is
	// reported with the listing time instead: it is in use right now,
	// and List does not wait behind it.
	LastUsed time.Time
}

// List snapshots the resident sessions, sorted by ID so pagination
// over successive calls is stable. Expired-but-unswept and deleted
// sessions are excluded; sessions busy in an operation are included
// as just-touched (see SessionInfo.LastUsed). O(live sessions);
// intended for ops/debug listing, not hot paths.
func (m *SessionManager) List() []SessionInfo {
	ttl := m.opts.TTL
	now := m.now()
	out := make([]SessionInfo, 0, 64)
	for i := range m.shards {
		sh := &m.shards[i]
		sh.mu.RLock()
		for id, ms := range m.shards[i].sessions {
			// A session whose lock is held is mid-operation — live by
			// definition — so report it as in use rather than stalling
			// the shard behind it (same reasoning as Sweep).
			if !ms.mu.TryLock() {
				out = append(out, SessionInfo{ID: id, LastUsed: now})
				continue
			}
			gone, last := ms.gone, ms.lastUsed
			ms.mu.Unlock()
			if gone || (ttl > 0 && now.Sub(last) > ttl) {
				continue
			}
			out = append(out, SessionInfo{ID: id, LastUsed: last})
		}
		sh.mu.RUnlock()
	}
	sort.Slice(out, func(a, b int) bool { return out[a].ID < out[b].ID })
	return out
}

// Stats snapshots the manager's counters.
func (m *SessionManager) Stats() ManagerStats {
	live := m.Len()
	m.stats.Lock()
	defer m.stats.Unlock()
	return ManagerStats{
		Live:          live,
		Created:       m.stats.created,
		Evicted:       m.stats.evicted,
		Restored:      m.stats.restored,
		Persisted:     m.stats.persisted,
		PersistErrors: m.stats.persistFails,
	}
}

// Draining reports whether Drain has been called.
func (m *SessionManager) Draining() bool { return m.draining.Load() }

// Drain puts the manager into drain mode — session-touching
// operations refuse with ErrDraining from here on — and flushes every
// resident session's unwritten state to the store so another replica
// can adopt them. Returns how many sessions were flushed and the first
// flush error. Safe to call more than once; there is no un-drain.
func (m *SessionManager) Drain() (int, error) {
	m.draining.Store(true)
	return m.flushAll()
}

// flushAll write-throughs every resident session, waiting behind
// in-flight operations (unlike the sweeper, drain must not skip a busy
// session — its evidence is exactly what is worth handing off).
func (m *SessionManager) flushAll() (int, error) {
	flushed := 0
	var firstErr error
	for i := range m.shards {
		sh := &m.shards[i]
		sh.mu.RLock()
		pending := make([]*managedSession, 0, len(sh.sessions))
		ids := make([]string, 0, len(sh.sessions))
		for id, ms := range sh.sessions {
			pending = append(pending, ms)
			ids = append(ids, id)
		}
		sh.mu.RUnlock()
		for j, ms := range pending {
			ms.mu.Lock()
			if !ms.gone {
				if err := m.persistLocked(ids[j], ms); err != nil {
					if firstErr == nil {
						firstErr = err
					}
				} else {
					flushed++
				}
			}
			ms.mu.Unlock()
		}
	}
	return flushed, firstErr
}

// Sweep collects every expired session now and reports how many it
// removed. A no-op (returning 0) when TTL is disabled.
func (m *SessionManager) Sweep() int {
	ttl := m.opts.TTL
	if ttl <= 0 {
		return 0
	}
	now := m.now()
	removed := 0
	for i := range m.shards {
		sh := &m.shards[i]
		// Collect candidates under the read lock using TryLock: a
		// session whose lock is held is mid-operation — by definition
		// not idle — so skipping it is correct and keeps the sweeper
		// from stalling the shard behind a long-running query.
		sh.mu.RLock()
		var stale []*managedSession
		var staleIDs []string
		for id, ms := range sh.sessions {
			if !ms.mu.TryLock() {
				continue
			}
			if !ms.gone && now.Sub(ms.lastUsed) > ttl {
				// Unflushed evidence must survive the eviction.
				m.flushIfDirtyLocked(id, ms)
				ms.gone = true
				stale = append(stale, ms)
				staleIDs = append(staleIDs, id)
			}
			ms.mu.Unlock()
		}
		sh.mu.RUnlock()
		if len(stale) == 0 {
			continue
		}
		sh.mu.Lock()
		for j, id := range staleIDs {
			if sh.sessions[id] == stale[j] {
				delete(sh.sessions, id)
				m.live.Add(-1)
				removed++
			}
		}
		sh.mu.Unlock()
	}
	if removed > 0 {
		m.stats.Lock()
		m.stats.evicted += int64(removed)
		m.stats.Unlock()
	}
	return removed
}

// sweepLoop periodically collects expired sessions until Close.
func (m *SessionManager) sweepLoop(interval time.Duration) {
	defer m.sweepWG.Done()
	t := time.NewTicker(interval)
	defer t.Stop()
	for {
		select {
		case <-m.closed:
			return
		case <-t.C:
			m.Sweep()
		}
	}
}

// Close stops the sweeper and rejects further operations, flushing
// every resident session to the store first so shutdown never discards
// evidence. Idempotent. The store itself belongs to the caller and
// stays open.
func (m *SessionManager) Close() error {
	var flushErr error
	m.closeOnce.Do(func() {
		if m.opts.Store != nil {
			_, flushErr = m.flushAll()
		}
		close(m.closed)
	})
	m.sweepWG.Wait()
	return flushErr
}
