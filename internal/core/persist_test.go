package core

import (
	"reflect"
	"testing"

	"repro/internal/collection"
	"repro/internal/feedback"
	"repro/internal/ilog"
	"repro/internal/profile"
	"repro/internal/synth"
)

func TestSessionSnapshotRoundTrip(t *testing.T) {
	arch, sys := fixture(t, Config{UseImplicit: true, UseProfile: true, ProfileLearnRate: 0.2})
	st := arch.Truth.SearchTopics[0]
	user := profile.New("snapuser").SetInterest(st.Category, 0.8)
	sess := sys.NewSession("snap-1", user)
	if _, err := sess.Query(st.Query); err != nil {
		t.Fatal(err)
	}
	rel := arch.Truth.Qrels.Relevant(st.ID, 1)
	for i := 0; i < 3 && i < len(rel); i++ {
		err := sess.Observe(ilog.Event{
			SessionID: "snap-1", Action: ilog.ActionClickKeyframe,
			ShotID: string(rel[i]), TopicID: st.ID, Rank: i,
		})
		if err != nil {
			t.Fatal(err)
		}
	}
	if _, err := sess.Query(st.Query); err != nil {
		t.Fatal(err)
	}

	data, err := sess.Snapshot()
	if err != nil {
		t.Fatal(err)
	}
	restored, err := sys.RestoreSession(data)
	if err != nil {
		t.Fatal(err)
	}
	if restored.ID() != sess.ID() || restored.Step() != sess.Step() {
		t.Errorf("identity/step mismatch: %s/%d vs %s/%d",
			restored.ID(), restored.Step(), sess.ID(), sess.Step())
	}
	if restored.LastQuery() != sess.LastQuery() {
		t.Error("last query lost")
	}
	if restored.EvidenceCount() != sess.EvidenceCount() {
		t.Errorf("evidence %d vs %d", restored.EvidenceCount(), sess.EvidenceCount())
	}
	if restored.SeenShots() != sess.SeenShots() {
		t.Errorf("seen %d vs %d", restored.SeenShots(), sess.SeenShots())
	}
	if !reflect.DeepEqual(restored.Mass(), sess.Mass()) {
		t.Error("evidence mass differs after restore")
	}
	// The drifted profile came along.
	if restored.User().Interest(st.Category) != sess.User().Interest(st.Category) {
		t.Error("profile state lost")
	}
	// And the restored session continues identically.
	a, err := sess.Query(st.Query)
	if err != nil {
		t.Fatal(err)
	}
	b, err := restored.Query(st.Query)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(a.IDs(), b.IDs()) {
		t.Error("restored session ranks differently")
	}
}

func TestSessionSnapshotEmpty(t *testing.T) {
	_, sys := fixture(t, Config{})
	sess := sys.NewSession("empty", nil)
	data, err := sess.Snapshot()
	if err != nil {
		t.Fatal(err)
	}
	restored, err := sys.RestoreSession(data)
	if err != nil {
		t.Fatal(err)
	}
	if restored.Step() != 0 || restored.EvidenceCount() != 0 {
		t.Error("empty session restore not empty")
	}
}

func TestRestoreRejectsBadData(t *testing.T) {
	_, sys := fixture(t, Config{})
	cases := []string{
		`not json`,
		`{"v":99,"id":"x"}`,
		`{"v":1}`,
		`{"v":1,"id":"x","evidence":[{"shot":"s","action":"bogus","step":0}]}`,
		`{"v":1,"id":"x","evidence":[{"shot":"","action":"play","step":0}]}`,
		`{"v":1,"id":"x","profile":{"interests":{"astrology":1}}}`,
	}
	for i, c := range cases {
		if _, err := sys.RestoreSession([]byte(c)); err == nil {
			t.Errorf("bad snapshot %d accepted", i)
		}
	}
}

func TestRestoredOstensiveAges(t *testing.T) {
	arch, err := synth.Generate(synth.TinyConfig(), 11)
	if err != nil {
		t.Fatal(err)
	}
	ost, err := feedback.NewOstensive(nil, 2)
	if err != nil {
		t.Fatal(err)
	}
	sys, err := NewSystemFromCollection(arch.Collection, Config{UseImplicit: true, Scheme: ost})
	if err != nil {
		t.Fatal(err)
	}
	sess := sys.NewSession("ost", nil)
	shot := string(arch.Collection.ShotIDs()[0])
	if err := sess.Observe(ilog.Event{SessionID: "ost", Action: ilog.ActionPlay, ShotID: shot, Seconds: 5}); err != nil {
		t.Fatal(err)
	}
	// Age the evidence by three query steps.
	st := arch.Truth.SearchTopics[0]
	for i := 0; i < 3; i++ {
		if _, err := sess.Query(st.Query); err != nil {
			t.Fatal(err)
		}
	}
	data, err := sess.Snapshot()
	if err != nil {
		t.Fatal(err)
	}
	restored, err := sys.RestoreSession(data)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(restored.Mass(), sess.Mass()) {
		t.Errorf("ostensive mass differs: %v vs %v", restored.Mass(), sess.Mass())
	}
	_ = collection.ShotID(shot)
}
