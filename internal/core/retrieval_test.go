package core

import (
	"fmt"
	"reflect"
	"sync"
	"testing"

	"repro/internal/ilog"
	"repro/internal/synth"
)

// twoSystems builds two systems over the same tiny archive: one with
// the given config and one reference with caching and sharding
// stripped (pure sequential, uncached retrieval).
func twoSystems(t testing.TB, cfg Config) (*synth.Archive, *System, *System) {
	t.Helper()
	arch, err := synth.Generate(synth.TinyConfig(), 11)
	if err != nil {
		t.Fatal(err)
	}
	sys, err := NewSystemFromCollection(arch.Collection, cfg)
	if err != nil {
		t.Fatal(err)
	}
	ref := cfg
	ref.Segments, ref.SearchWorkers, ref.CacheSize = 0, 0, 0
	refSys, err := NewSystemFromCollection(arch.Collection, ref)
	if err != nil {
		t.Fatal(err)
	}
	return arch, sys, refSys
}

func click(sessionID, shotID string, rank int) ilog.Event {
	return ilog.Event{SessionID: sessionID, Action: ilog.ActionClickKeyframe, ShotID: shotID, Rank: rank}
}

// TestShardedSystemParity: the sharded parallel system must rank
// byte-identically to the sequential one across seeds and topics, both
// stateless and through adapted sessions.
func TestShardedSystemParity(t *testing.T) {
	for _, seed := range []int64{3, 11, 2008} {
		arch, err := synth.Generate(synth.TinyConfig(), seed)
		if err != nil {
			t.Fatal(err)
		}
		par, err := NewSystemFromCollection(arch.Collection, Config{UseImplicit: true, Segments: 4, SearchWorkers: 4})
		if err != nil {
			t.Fatal(err)
		}
		seq, err := NewSystemFromCollection(arch.Collection, Config{UseImplicit: true})
		if err != nil {
			t.Fatal(err)
		}
		for _, topic := range arch.Truth.SearchTopics {
			rp, err := par.SearchOnce(topic.Query)
			if err != nil {
				t.Fatal(err)
			}
			rs, err := seq.SearchOnce(topic.Query)
			if err != nil {
				t.Fatal(err)
			}
			if !reflect.DeepEqual(rp, rs) {
				t.Fatalf("seed %d topic %d: sharded SearchOnce diverged", seed, topic.ID)
			}
		}
		// Adapted parity: same evidence stream into both systems.
		topic := arch.Truth.SearchTopics[0]
		sp := par.NewSession("p", nil)
		ss := seq.NewSession("s", nil)
		for iter := 0; iter < 3; iter++ {
			rp, err := sp.Query(topic.Query)
			if err != nil {
				t.Fatal(err)
			}
			rs, err := ss.Query(topic.Query)
			if err != nil {
				t.Fatal(err)
			}
			if !reflect.DeepEqual(rp, rs) {
				t.Fatalf("seed %d iter %d: adapted sharded ranking diverged", seed, iter)
			}
			if len(rp.Hits) > 0 {
				if err := sp.Observe(click("p", rp.Hits[0].ID, 0)); err != nil {
					t.Fatal(err)
				}
				if err := ss.Observe(click("s", rs.Hits[0].ID, 0)); err != nil {
					t.Fatal(err)
				}
			}
		}
	}
}

// TestCacheEvidenceSafety: a new implicit event changes the evidence
// fingerprint, so the next query misses the cache and re-retrieves —
// the session can never see results predating its evidence.
func TestCacheEvidenceSafety(t *testing.T) {
	arch, sys, refSys := twoSystems(t, Config{UseImplicit: true, CacheSize: 64, Segments: 2})
	topic := arch.Truth.SearchTopics[0]
	sess := sys.NewSession("cached", nil)
	ref := refSys.NewSession("ref", nil)

	r1, err := sess.Query(topic.Query)
	if err != nil {
		t.Fatal(err)
	}
	// Re-ask to warm the hit path, and on a fresh second session too.
	if _, err := sys.NewSession("other", nil).Query(topic.Query); err != nil {
		t.Fatal(err)
	}
	if hits := sys.Cache().Stats().Hits; hits == 0 {
		t.Fatalf("expected a cache hit from the repeated query, stats %+v", sys.Cache().Stats())
	}
	if _, err := ref.Query(topic.Query); err != nil {
		t.Fatal(err)
	}

	fpBefore := sess.EvidenceFingerprint()
	if err := sess.Observe(click("cached", r1.Hits[0].ID, 0)); err != nil {
		t.Fatal(err)
	}
	if err := ref.Observe(click("ref", r1.Hits[0].ID, 0)); err != nil {
		t.Fatal(err)
	}
	fpAfter := sess.EvidenceFingerprint()
	if fpBefore == fpAfter {
		t.Fatal("implicit event did not change the evidence fingerprint")
	}

	missesBefore := sys.Cache().Stats().Misses
	r2, err := sess.Query(topic.Query)
	if err != nil {
		t.Fatal(err)
	}
	if sys.Cache().Stats().Misses <= missesBefore {
		t.Fatal("post-event query was served from cache instead of re-retrieving")
	}
	want, err := ref.Query(topic.Query)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(r2, want) {
		t.Fatal("cached system returned stale/divergent results after new evidence")
	}
}

// TestCacheEvidenceSafetyRace runs the staleness check concurrently:
// many sessions share the cache while each interleaves events and
// queries, and every ranking must match an uncached twin session fed
// the same evidence. Run under -race this also proves the cache and
// fan-out are data-race free.
func TestCacheEvidenceSafetyRace(t *testing.T) {
	arch, sys, refSys := twoSystems(t, Config{UseImplicit: true, CacheSize: 256, Segments: 4, SearchWorkers: 4})
	topics := arch.Truth.SearchTopics
	var wg sync.WaitGroup
	for g := 0; g < 6; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			id := fmt.Sprintf("s%d", g)
			sess := sys.NewSession(id, nil)
			ref := refSys.NewSession(id+"ref", nil)
			topic := topics[g%len(topics)]
			for iter := 0; iter < 4; iter++ {
				got, err := sess.Query(topic.Query)
				if err != nil {
					t.Error(err)
					return
				}
				want, err := ref.Query(topic.Query)
				if err != nil {
					t.Error(err)
					return
				}
				if !reflect.DeepEqual(got, want) {
					t.Errorf("worker %d iter %d: cached ranking diverged from uncached twin", g, iter)
					return
				}
				if len(got.Hits) > iter {
					if err := sess.Observe(click(id, got.Hits[iter].ID, iter)); err != nil {
						t.Error(err)
						return
					}
					if err := ref.Observe(click(id+"ref", want.Hits[iter].ID, iter)); err != nil {
						t.Error(err)
						return
					}
				}
			}
		}(g)
	}
	wg.Wait()
}

// TestCacheSharedAcrossSessions: two evidence-free sessions asking the
// same query share one cache entry (the load-model common case).
func TestCacheSharedAcrossSessions(t *testing.T) {
	arch, sys, _ := twoSystems(t, Config{UseImplicit: true, CacheSize: 16})
	topic := arch.Truth.SearchTopics[0]
	a, err := sys.NewSession("a", nil).Query(topic.Query)
	if err != nil {
		t.Fatal(err)
	}
	b, err := sys.NewSession("b", nil).Query(topic.Query)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(a, b) {
		t.Fatal("sessions disagree on an identical evidence-free query")
	}
	st := sys.Cache().Stats()
	if st.Misses != 1 || st.Hits != 1 {
		t.Fatalf("want 1 miss + 1 hit, got %+v", st)
	}
	// Textual variants of the same analysed query share the entry too.
	if _, err := sys.NewSession("c", nil).Query("  " + topic.Query + "!  "); err != nil {
		t.Fatal(err)
	}
	if st := sys.Cache().Stats(); st.Hits != 2 {
		t.Fatalf("normalized query variant missed the cache: %+v", st)
	}
}

// TestFilteredQueriesBypassCache: opaque filters cannot be
// fingerprinted, so filtered queries never read or write the cache.
func TestFilteredQueriesBypassCache(t *testing.T) {
	arch, sys, _ := twoSystems(t, Config{UseImplicit: true, CacheSize: 16})
	topic := arch.Truth.SearchTopics[0]
	sess := sys.NewSession("f", nil)
	if _, err := sess.QueryFiltered(topic.Query, func(string) bool { return false }); err != nil {
		t.Fatal(err)
	}
	st := sys.Cache().Stats()
	if st.Misses != 0 || st.Hits != 0 || st.Entries != 0 {
		t.Fatalf("filtered query touched the cache: %+v", st)
	}
}

// TestRetrievalSnapshotShape: the telemetry snapshot reflects the
// wired segments and counts their scoring passes.
func TestRetrievalSnapshotShape(t *testing.T) {
	arch, sys, _ := twoSystems(t, Config{CacheSize: 8, Segments: 3, SearchWorkers: 2})
	if _, err := sys.SearchOnce(arch.Truth.SearchTopics[0].Query); err != nil {
		t.Fatal(err)
	}
	snap := sys.RetrievalSnapshot()
	if !snap.Cache.Enabled || snap.Cache.Capacity != 8 {
		t.Errorf("cache snapshot: %+v", snap.Cache)
	}
	if len(snap.Segments) != 3 || snap.Workers != 2 {
		t.Fatalf("segments snapshot: %+v workers=%d", snap.Segments, snap.Workers)
	}
	docs := 0
	for i, seg := range snap.Segments {
		if seg.Segment != i || seg.Searches == 0 {
			t.Errorf("segment %d not scored: %+v", i, seg)
		}
		docs += seg.Docs
	}
	if docs != arch.Collection.NumShots() {
		t.Errorf("segment docs sum to %d, want %d", docs, arch.Collection.NumShots())
	}
}
