package core

import (
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/ilog"
	"repro/internal/profile"
)

func newTestManager(t testing.TB, opts ManagerOptions) *SessionManager {
	t.Helper()
	_, sys := fixture(t, Config{UseImplicit: true, UseProfile: true})
	m, err := NewSessionManager(sys, opts)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { m.Close() })
	return m
}

func TestManagerCreateWithLifecycle(t *testing.T) {
	m := newTestManager(t, ManagerOptions{})
	user := profile.New("alice")
	id, err := m.Create(user)
	if err != nil {
		t.Fatal(err)
	}
	if id == "" {
		t.Fatal("empty session id")
	}
	if got := m.Len(); got != 1 {
		t.Fatalf("Len = %d, want 1", got)
	}
	err = m.With(id, func(sess *Session) error {
		if sess.ID() != id {
			t.Errorf("session id %q, want %q", sess.ID(), id)
		}
		if sess.User() != user {
			t.Error("session lost its profile")
		}
		_, err := sess.Query("first query terms")
		return err
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := m.Delete(id); err != nil {
		t.Fatal(err)
	}
	if err := m.Delete(id); !errors.Is(err, ErrSessionNotFound) {
		t.Errorf("second delete = %v, want ErrSessionNotFound", err)
	}
	if err := m.With(id, func(*Session) error { return nil }); !errors.Is(err, ErrSessionNotFound) {
		t.Errorf("With after delete = %v, want ErrSessionNotFound", err)
	}
	if got := m.Len(); got != 0 {
		t.Fatalf("Len after delete = %d, want 0", got)
	}
}

func TestManagerUnknownSession(t *testing.T) {
	m := newTestManager(t, ManagerOptions{})
	if err := m.With("ghost", func(*Session) error { return nil }); !errors.Is(err, ErrSessionNotFound) {
		t.Errorf("With(ghost) = %v", err)
	}
	if err := m.Delete("ghost"); !errors.Is(err, ErrSessionNotFound) {
		t.Errorf("Delete(ghost) = %v", err)
	}
}

func TestManagerWithPropagatesError(t *testing.T) {
	m := newTestManager(t, ManagerOptions{})
	id, err := m.Create(nil)
	if err != nil {
		t.Fatal(err)
	}
	sentinel := errors.New("boom")
	if err := m.With(id, func(*Session) error { return sentinel }); !errors.Is(err, sentinel) {
		t.Errorf("With error = %v, want sentinel", err)
	}
}

func TestManagerMaxSessions(t *testing.T) {
	m := newTestManager(t, ManagerOptions{MaxSessions: 3})
	ids := make([]string, 3)
	for i := range ids {
		id, err := m.Create(nil)
		if err != nil {
			t.Fatal(err)
		}
		ids[i] = id
	}
	if _, err := m.Create(nil); !errors.Is(err, ErrTooManySessions) {
		t.Fatalf("Create at cap = %v, want ErrTooManySessions", err)
	}
	if err := m.Delete(ids[0]); err != nil {
		t.Fatal(err)
	}
	if _, err := m.Create(nil); err != nil {
		t.Fatalf("Create after delete = %v", err)
	}
}

// TestManagerMaxSessionsConcurrent races many creates against a small
// cap: the CAS-guarded slot reservation must never overshoot.
func TestManagerMaxSessionsConcurrent(t *testing.T) {
	const cap = 5
	m := newTestManager(t, ManagerOptions{MaxSessions: cap})
	var wg sync.WaitGroup
	var created atomic.Int64
	for g := 0; g < 20; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			if _, err := m.Create(nil); err == nil {
				created.Add(1)
			} else if !errors.Is(err, ErrTooManySessions) {
				t.Error(err)
			}
		}()
	}
	wg.Wait()
	if got := created.Load(); got != cap {
		t.Errorf("created = %d, want exactly %d", got, cap)
	}
	if got := m.Len(); got != cap {
		t.Errorf("Len = %d, want %d", got, cap)
	}
}

// TestManagerTTLEviction drives expiry with a fake clock: idle
// sessions vanish (lazily on access and in bulk via Sweep), active
// sessions survive because use touches the idle clock.
func TestManagerTTLEviction(t *testing.T) {
	var mu sync.Mutex
	now := time.Unix(1_200_000_000, 0)
	clock := func() time.Time {
		mu.Lock()
		defer mu.Unlock()
		return now
	}
	advance := func(d time.Duration) {
		mu.Lock()
		now = now.Add(d)
		mu.Unlock()
	}
	m := newTestManager(t, ManagerOptions{TTL: time.Minute, Now: clock})

	idle, err := m.Create(nil)
	if err != nil {
		t.Fatal(err)
	}
	active, err := m.Create(nil)
	if err != nil {
		t.Fatal(err)
	}
	// Keep one session active across the idle session's TTL.
	for i := 0; i < 3; i++ {
		advance(30 * time.Second)
		if err := m.With(active, func(*Session) error { return nil }); err != nil {
			t.Fatalf("active session at +%ds: %v", (i+1)*30, err)
		}
	}
	// 90s elapsed: the idle session is expired and rejected on access.
	if err := m.With(idle, func(*Session) error { return nil }); !errors.Is(err, ErrSessionNotFound) {
		t.Fatalf("idle session after TTL = %v, want ErrSessionNotFound", err)
	}
	if got := m.Len(); got != 1 {
		t.Fatalf("Len after lazy eviction = %d, want 1", got)
	}
	// Sweep collects the remaining session once it idles past TTL.
	advance(2 * time.Minute)
	if removed := m.Sweep(); removed != 1 {
		t.Fatalf("Sweep removed %d, want 1", removed)
	}
	if got := m.Len(); got != 0 {
		t.Fatalf("Len after sweep = %d, want 0", got)
	}
	st := m.Stats()
	if st.Created != 2 || st.Evicted != 2 {
		t.Errorf("stats = %+v, want Created=2 Evicted=2", st)
	}
}

func TestManagerClose(t *testing.T) {
	_, sys := fixture(t, Config{})
	m, err := NewSessionManager(sys, ManagerOptions{TTL: time.Hour})
	if err != nil {
		t.Fatal(err)
	}
	id, err := m.Create(nil)
	if err != nil {
		t.Fatal(err)
	}
	if err := m.Close(); err != nil {
		t.Fatal(err)
	}
	if err := m.Close(); err != nil {
		t.Fatal("second close:", err)
	}
	if _, err := m.Create(nil); !errors.Is(err, ErrManagerClosed) {
		t.Errorf("Create after close = %v", err)
	}
	if err := m.With(id, func(*Session) error { return nil }); !errors.Is(err, ErrManagerClosed) {
		t.Errorf("With after close = %v", err)
	}
}

func TestManagerOptionValidation(t *testing.T) {
	_, sys := fixture(t, Config{})
	if _, err := NewSessionManager(nil, ManagerOptions{}); err == nil {
		t.Error("nil system accepted")
	}
	if _, err := NewSessionManager(sys, ManagerOptions{TTL: -time.Second}); err == nil {
		t.Error("negative TTL accepted")
	}
	if _, err := NewSessionManager(sys, ManagerOptions{MaxSessions: -1}); err == nil {
		t.Error("negative MaxSessions accepted")
	}
}

// TestManagerConcurrentHammer exercises the full surface from many
// goroutines — create, search, observe, state reads, deletes, sweeps —
// and relies on -race to catch table or session races. Every session
// is private to one goroutine's iteration, so all fn errors are real
// failures.
func TestManagerConcurrentHammer(t *testing.T) {
	m := newTestManager(t, ManagerOptions{TTL: time.Hour})
	const (
		goroutines = 16
		iterations = 8
	)
	var searches atomic.Int64
	var wg sync.WaitGroup
	errc := make(chan error, goroutines)
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < iterations; i++ {
				id, err := m.Create(profile.New(fmt.Sprintf("u%d", g)))
				if err != nil {
					errc <- err
					return
				}
				var top string
				err = m.With(id, func(sess *Session) error {
					res, err := sess.Query("report on events")
					if err != nil {
						return err
					}
					if len(res.Hits) > 0 {
						top = res.Hits[0].ID
					}
					searches.Add(1)
					return nil
				})
				if err != nil {
					errc <- fmt.Errorf("search: %w", err)
					return
				}
				if top != "" {
					err = m.With(id, func(sess *Session) error {
						return sess.ObserveAll([]ilog.Event{
							{SessionID: id, Action: ilog.ActionClickKeyframe, ShotID: top, Rank: 0},
							{SessionID: id, Action: ilog.ActionPlay, ShotID: top, Rank: 0, Seconds: 12},
						})
					})
					if err != nil {
						errc <- fmt.Errorf("observe: %w", err)
						return
					}
				}
				err = m.With(id, func(sess *Session) error {
					if sess.Step() != 1 {
						return fmt.Errorf("step = %d, want 1", sess.Step())
					}
					_, err := sess.Query("report on events")
					return err
				})
				if err != nil {
					errc <- fmt.Errorf("requery: %w", err)
					return
				}
				// Half the sessions end explicitly; the rest idle out.
				if i%2 == 0 {
					if err := m.Delete(id); err != nil {
						errc <- fmt.Errorf("delete: %w", err)
						return
					}
				}
				if i%3 == 0 {
					m.Sweep()
					m.Len()
				}
			}
		}(g)
	}
	wg.Wait()
	close(errc)
	for err := range errc {
		t.Fatal(err)
	}
	if got := searches.Load(); got != goroutines*iterations {
		t.Errorf("searches = %d, want %d", got, goroutines*iterations)
	}
	st := m.Stats()
	if st.Created != goroutines*iterations {
		t.Errorf("created = %d, want %d", st.Created, goroutines*iterations)
	}
}

func TestManagerList(t *testing.T) {
	var mu sync.Mutex
	now := time.Unix(1_200_000_000, 0)
	clock := func() time.Time {
		mu.Lock()
		defer mu.Unlock()
		return now
	}
	m := newTestManager(t, ManagerOptions{TTL: time.Minute, Now: clock})

	if got := m.List(); len(got) != 0 {
		t.Fatalf("List on empty manager = %v", got)
	}
	var ids []string
	for i := 0; i < 5; i++ {
		id, err := m.Create(nil)
		if err != nil {
			t.Fatal(err)
		}
		ids = append(ids, id)
	}
	infos := m.List()
	if len(infos) != 5 {
		t.Fatalf("List = %d sessions, want 5", len(infos))
	}
	seen := map[string]bool{}
	for i, info := range infos {
		if i > 0 && infos[i-1].ID >= info.ID {
			t.Fatalf("List not sorted: %q before %q", infos[i-1].ID, info.ID)
		}
		if info.LastUsed != now {
			t.Errorf("%s LastUsed = %v, want %v", info.ID, info.LastUsed, now)
		}
		seen[info.ID] = true
	}
	for _, id := range ids {
		if !seen[id] {
			t.Errorf("created session %s missing from List", id)
		}
	}
	// Deleted and expired sessions drop out of the listing.
	if err := m.Delete(ids[0]); err != nil {
		t.Fatal(err)
	}
	mu.Lock()
	now = now.Add(2 * time.Minute)
	mu.Unlock()
	if err := m.With(ids[1], func(*Session) error { return nil }); !errors.Is(err, ErrSessionNotFound) {
		t.Fatalf("expired session = %v, want ErrSessionNotFound", err)
	}
	if got := m.List(); len(got) != 0 {
		t.Fatalf("List after delete+expiry = %d sessions, want 0", len(got))
	}
}
