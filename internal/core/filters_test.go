package core

import (
	"testing"
	"time"

	"repro/internal/collection"
)

func TestCategoryFilter(t *testing.T) {
	arch, sys := fixture(t, Config{})
	st := arch.Truth.SearchTopics[0]
	// Unfiltered vs filtered on the topic's own category.
	sess := sys.NewSession("f", nil)
	res, err := sess.QueryFiltered(st.Query, sys.CategoryFilter(st.Category))
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Hits) == 0 {
		t.Fatal("category filter removed everything")
	}
	for _, h := range res.Hits {
		story := arch.Collection.StoryOfShot(collection.ShotID(h.ID))
		if story == nil || story.Category != st.Category {
			t.Fatalf("hit %s outside category %s", h.ID, st.Category)
		}
	}
	// Filtering on a different category excludes the topic's stories.
	other := (st.Category + 1) % collection.Category(collection.NumCategories)
	resOther, err := sys.NewSession("f2", nil).QueryFiltered(st.Query, sys.CategoryFilter(other))
	if err != nil {
		t.Fatal(err)
	}
	for _, h := range resOther.Hits {
		story := arch.Collection.StoryOfShot(collection.ShotID(h.ID))
		if story.Category != other {
			t.Fatalf("hit %s outside category %s", h.ID, other)
		}
	}
}

func TestBroadcastWindowFilter(t *testing.T) {
	arch, sys := fixture(t, Config{})
	st := arch.Truth.SearchTopics[0]
	// Window covering only the first day.
	first := arch.Collection.Video(arch.Collection.VideoIDs()[0])
	from := first.Broadcast
	to := from.Add(24 * time.Hour)
	res, err := sys.NewSession("w", nil).QueryFiltered(st.Query, sys.BroadcastWindowFilter(from, to))
	if err != nil {
		t.Fatal(err)
	}
	for _, h := range res.Hits {
		shot := arch.Collection.Shot(collection.ShotID(h.ID))
		video := arch.Collection.Video(shot.VideoID)
		if video.Broadcast.Before(from) || !video.Broadcast.Before(to) {
			t.Fatalf("hit %s aired outside window", h.ID)
		}
	}
	// Zero bounds keep everything a plain query returns.
	all, err := sys.NewSession("w2", nil).QueryFiltered(st.Query, sys.BroadcastWindowFilter(time.Time{}, time.Time{}))
	if err != nil {
		t.Fatal(err)
	}
	plain, err := sys.SearchOnce(st.Query)
	if err != nil {
		t.Fatal(err)
	}
	if len(all.Hits) != len(plain.Hits) {
		t.Errorf("zero-bound window changed results: %d vs %d", len(all.Hits), len(plain.Hits))
	}
}

func TestCombineFilters(t *testing.T) {
	arch, sys := fixture(t, Config{})
	st := arch.Truth.SearchTopics[0]
	combined := CombineFilters(
		nil,
		sys.CategoryFilter(st.Category),
		func(id string) bool { return id != "" },
	)
	res, err := sys.NewSession("c", nil).QueryFiltered(st.Query, combined)
	if err != nil {
		t.Fatal(err)
	}
	for _, h := range res.Hits {
		story := arch.Collection.StoryOfShot(collection.ShotID(h.ID))
		if story.Category != st.Category {
			t.Fatal("combined filter leaked")
		}
	}
	if CombineFilters(nil, nil) != nil {
		t.Error("all-nil combination should be nil")
	}
}
