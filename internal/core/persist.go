package core

import (
	"bytes"
	"encoding/binary"
	"encoding/json"
	"fmt"
	"math"
	"sort"

	"repro/internal/feedback"
	"repro/internal/ilog"
	"repro/internal/profile"
)

// sessionSnapshot is the durable form of a session's state, shared by
// both wire codecs (JSON v1 and binary v2). The schema is versioned so
// future fields can be added compatibly.
type sessionSnapshot struct {
	Version   int                `json:"v"`
	ID        string             `json:"id"`
	Step      int                `json:"step"`
	LastQuery string             `json:"last_query,omitempty"`
	Seen      []string           `json:"seen,omitempty"`
	Evidence  []evidenceSnapshot `json:"evidence,omitempty"`
	Profile   json.RawMessage    `json:"profile,omitempty"`
}

// evidenceSnapshot mirrors feedback.Evidence with stable JSON names.
type evidenceSnapshot struct {
	ShotID      string      `json:"shot"`
	Action      ilog.Action `json:"action"`
	Seconds     float64     `json:"seconds,omitempty"`
	ShotSeconds float64     `json:"shot_seconds,omitempty"`
	Rating      int         `json:"rating,omitempty"`
	Step        int         `json:"step"`
}

const (
	snapshotVersion = 1
	// binarySnapshotTag is both the codec version and the sniff byte:
	// JSON snapshots start with '{' (0x7b), binary ones with 0x02.
	binarySnapshotTag byte = 2
)

// snapshot collects the session's durable state into the shared
// snapshot struct. Seen IDs are sorted so both codecs are
// deterministic byte-for-byte for a given session state.
func (sess *Session) snapshot() (sessionSnapshot, error) {
	snap := sessionSnapshot{
		Version:   snapshotVersion,
		ID:        sess.id,
		Step:      sess.step,
		LastQuery: sess.lastQuery,
	}
	snap.Seen = make([]string, 0, len(sess.seen))
	for id := range sess.seen {
		snap.Seen = append(snap.Seen, id)
	}
	sort.Strings(snap.Seen)
	for _, ev := range sess.acc.Evidence() {
		snap.Evidence = append(snap.Evidence, evidenceSnapshot{
			ShotID: ev.ShotID, Action: ev.Action, Seconds: ev.Seconds,
			ShotSeconds: ev.ShotSeconds, Rating: ev.Rating, Step: ev.Step,
		})
	}
	if sess.user != nil {
		raw, err := json.Marshal(sess.user)
		if err != nil {
			return sessionSnapshot{}, fmt.Errorf("core: snapshot profile: %w", err)
		}
		snap.Profile = raw
	}
	return snap, nil
}

// Snapshot serialises the session's durable state (profile, evidence,
// seen set, clocks) to JSON so it can be restored across process
// restarts. The owning System is not part of the snapshot; restore
// against a system over the same collection.
func (sess *Session) Snapshot() ([]byte, error) {
	snap, err := sess.snapshot()
	if err != nil {
		return nil, err
	}
	data, err := json.Marshal(&snap)
	if err != nil {
		return nil, fmt.Errorf("core: snapshot: %w", err)
	}
	return data, nil
}

// EncodeState serialises the session to the compact binary v2 codec —
// the form the SessionManager writes through to its SessionStore. The
// encoding is deterministic (sorted seen set, evidence in arrival
// order), so identical session states produce identical bytes.
func (sess *Session) EncodeState() ([]byte, error) {
	snap, err := sess.snapshot()
	if err != nil {
		return nil, err
	}
	var buf bytes.Buffer
	buf.WriteByte(binarySnapshotTag)
	putString(&buf, snap.ID)
	putUvarint(&buf, uint64(snap.Step))
	putString(&buf, snap.LastQuery)
	putUvarint(&buf, uint64(len(snap.Seen)))
	for _, id := range snap.Seen {
		putString(&buf, id)
	}
	putUvarint(&buf, uint64(len(snap.Evidence)))
	for _, ev := range snap.Evidence {
		putString(&buf, ev.ShotID)
		putString(&buf, string(ev.Action))
		putFloat(&buf, ev.Seconds)
		putFloat(&buf, ev.ShotSeconds)
		putVarint(&buf, int64(ev.Rating))
		putUvarint(&buf, uint64(ev.Step))
	}
	putBytes(&buf, snap.Profile)
	return buf.Bytes(), nil
}

// RestoreSession rebuilds a session from Snapshot or EncodeState bytes
// against this system (the codec is sniffed from the first byte). The
// session resumes with the same evidence, seen set, iteration clock
// and (possibly drifted) profile; because evidence is replayed through
// the accumulator, the restored EvidenceFingerprint is bit-identical
// to the live session's.
func (s *System) RestoreSession(data []byte) (*Session, error) {
	var snap sessionSnapshot
	switch {
	case len(data) == 0:
		return nil, fmt.Errorf("core: restore: empty snapshot")
	case data[0] == binarySnapshotTag:
		if err := decodeBinarySnapshot(data, &snap); err != nil {
			return nil, err
		}
	case data[0] == '{':
		if err := json.Unmarshal(data, &snap); err != nil {
			return nil, fmt.Errorf("core: restore: %w", err)
		}
		if snap.Version != snapshotVersion {
			return nil, fmt.Errorf("core: restore: unsupported snapshot version %d", snap.Version)
		}
	default:
		return nil, fmt.Errorf("core: restore: unrecognised snapshot codec (tag 0x%02x)", data[0])
	}
	return s.restoreFromSnapshot(&snap)
}

func (s *System) restoreFromSnapshot(snap *sessionSnapshot) (*Session, error) {
	if snap.ID == "" {
		return nil, fmt.Errorf("core: restore: snapshot without session id")
	}
	var user *profile.Profile
	if len(snap.Profile) > 0 {
		user = &profile.Profile{}
		if err := json.Unmarshal(snap.Profile, user); err != nil {
			return nil, fmt.Errorf("core: restore profile: %w", err)
		}
	}
	sess := s.NewSession(snap.ID, user)
	sess.step = snap.Step
	sess.lastQuery = snap.LastQuery
	for _, id := range snap.Seen {
		sess.seen[id] = true
	}
	for i, evs := range snap.Evidence {
		ev := feedback.Evidence{
			ShotID: evs.ShotID, Action: evs.Action, Seconds: evs.Seconds,
			ShotSeconds: evs.ShotSeconds, Rating: evs.Rating, Step: evs.Step,
		}
		if !ev.Action.Valid() {
			return nil, fmt.Errorf("core: restore: evidence %d has unknown action %q", i, ev.Action)
		}
		if err := sess.acc.Observe(ev); err != nil {
			return nil, fmt.Errorf("core: restore: evidence %d: %w", i, err)
		}
	}
	// Align the accumulator clock with the restored session clock so
	// ostensive ages match the original session exactly.
	sess.acc.SetStep(snap.Step)
	if sess.acc.Step() > sess.step {
		sess.step = sess.acc.Step()
	}
	return sess, nil
}

// decodeBinarySnapshot parses the binary v2 codec into the shared
// snapshot struct.
func decodeBinarySnapshot(data []byte, snap *sessionSnapshot) error {
	r := binReader{b: data, off: 1}
	snap.Version = snapshotVersion
	snap.ID = r.str()
	snap.Step = int(r.uvarint())
	snap.LastQuery = r.str()
	nSeen := r.uvarint()
	if r.err == nil && nSeen > uint64(len(data)) {
		return fmt.Errorf("core: restore: corrupt binary snapshot (seen count %d)", nSeen)
	}
	snap.Seen = make([]string, 0, nSeen)
	for i := uint64(0); i < nSeen && r.err == nil; i++ {
		snap.Seen = append(snap.Seen, r.str())
	}
	nEv := r.uvarint()
	if r.err == nil && nEv > uint64(len(data)) {
		return fmt.Errorf("core: restore: corrupt binary snapshot (evidence count %d)", nEv)
	}
	snap.Evidence = make([]evidenceSnapshot, 0, nEv)
	for i := uint64(0); i < nEv && r.err == nil; i++ {
		snap.Evidence = append(snap.Evidence, evidenceSnapshot{
			ShotID:      r.str(),
			Action:      ilog.Action(r.str()),
			Seconds:     r.float(),
			ShotSeconds: r.float(),
			Rating:      int(r.varint()),
			Step:        int(r.uvarint()),
		})
	}
	prof := r.bytes()
	if len(prof) > 0 {
		snap.Profile = json.RawMessage(prof)
	}
	if r.err != nil {
		return fmt.Errorf("core: restore: %w", r.err)
	}
	if r.off != len(data) {
		return fmt.Errorf("core: restore: %d trailing bytes after binary snapshot", len(data)-r.off)
	}
	return nil
}

// --- little binary codec helpers (varint framing, BE float bits) ---

func putUvarint(buf *bytes.Buffer, v uint64) {
	var tmp [binary.MaxVarintLen64]byte
	buf.Write(tmp[:binary.PutUvarint(tmp[:], v)])
}

func putVarint(buf *bytes.Buffer, v int64) {
	var tmp [binary.MaxVarintLen64]byte
	buf.Write(tmp[:binary.PutVarint(tmp[:], v)])
}

func putBytes(buf *bytes.Buffer, b []byte) {
	putUvarint(buf, uint64(len(b)))
	buf.Write(b)
}

func putString(buf *bytes.Buffer, s string) {
	putUvarint(buf, uint64(len(s)))
	buf.WriteString(s)
}

func putFloat(buf *bytes.Buffer, f float64) {
	var tmp [8]byte
	binary.BigEndian.PutUint64(tmp[:], math.Float64bits(f))
	buf.Write(tmp[:])
}

// binReader is a cursor over binary snapshot bytes; the first decode
// error sticks and every later read returns zero values.
type binReader struct {
	b   []byte
	off int
	err error
}

func (r *binReader) uvarint() uint64 {
	if r.err != nil {
		return 0
	}
	v, n := binary.Uvarint(r.b[r.off:])
	if n <= 0 {
		r.err = fmt.Errorf("truncated uvarint at offset %d", r.off)
		return 0
	}
	r.off += n
	return v
}

func (r *binReader) varint() int64 {
	if r.err != nil {
		return 0
	}
	v, n := binary.Varint(r.b[r.off:])
	if n <= 0 {
		r.err = fmt.Errorf("truncated varint at offset %d", r.off)
		return 0
	}
	r.off += n
	return v
}

func (r *binReader) bytes() []byte {
	n := r.uvarint()
	if r.err != nil {
		return nil
	}
	if n > uint64(len(r.b)-r.off) {
		r.err = fmt.Errorf("truncated field at offset %d (want %d bytes)", r.off, n)
		return nil
	}
	b := r.b[r.off : r.off+int(n)]
	r.off += int(n)
	return b
}

func (r *binReader) str() string { return string(r.bytes()) }

func (r *binReader) float() float64 {
	if r.err != nil {
		return 0
	}
	if len(r.b)-r.off < 8 {
		r.err = fmt.Errorf("truncated float at offset %d", r.off)
		return 0
	}
	f := math.Float64frombits(binary.BigEndian.Uint64(r.b[r.off:]))
	r.off += 8
	return f
}
