package core

import (
	"encoding/json"
	"fmt"
	"sort"

	"repro/internal/feedback"
	"repro/internal/ilog"
	"repro/internal/profile"
)

// sessionSnapshot is the JSON form of a session's durable state. The
// schema is versioned so future fields can be added compatibly.
type sessionSnapshot struct {
	Version   int                `json:"v"`
	ID        string             `json:"id"`
	Step      int                `json:"step"`
	LastQuery string             `json:"last_query,omitempty"`
	Seen      []string           `json:"seen,omitempty"`
	Evidence  []evidenceSnapshot `json:"evidence,omitempty"`
	Profile   json.RawMessage    `json:"profile,omitempty"`
}

// evidenceSnapshot mirrors feedback.Evidence with stable JSON names.
type evidenceSnapshot struct {
	ShotID      string      `json:"shot"`
	Action      ilog.Action `json:"action"`
	Seconds     float64     `json:"seconds,omitempty"`
	ShotSeconds float64     `json:"shot_seconds,omitempty"`
	Rating      int         `json:"rating,omitempty"`
	Step        int         `json:"step"`
}

const snapshotVersion = 1

// Snapshot serialises the session's durable state (profile, evidence,
// seen set, clocks) to JSON so it can be restored across process
// restarts. The owning System is not part of the snapshot; restore
// against a system over the same collection.
func (sess *Session) Snapshot() ([]byte, error) {
	snap := sessionSnapshot{
		Version:   snapshotVersion,
		ID:        sess.id,
		Step:      sess.step,
		LastQuery: sess.lastQuery,
	}
	snap.Seen = make([]string, 0, len(sess.seen))
	for id := range sess.seen {
		snap.Seen = append(snap.Seen, id)
	}
	sort.Strings(snap.Seen)
	for _, ev := range sess.acc.Evidence() {
		snap.Evidence = append(snap.Evidence, evidenceSnapshot{
			ShotID: ev.ShotID, Action: ev.Action, Seconds: ev.Seconds,
			ShotSeconds: ev.ShotSeconds, Rating: ev.Rating, Step: ev.Step,
		})
	}
	if sess.user != nil {
		raw, err := json.Marshal(sess.user)
		if err != nil {
			return nil, fmt.Errorf("core: snapshot profile: %w", err)
		}
		snap.Profile = raw
	}
	data, err := json.Marshal(&snap)
	if err != nil {
		return nil, fmt.Errorf("core: snapshot: %w", err)
	}
	return data, nil
}

// RestoreSession rebuilds a session from a Snapshot against this
// system. The session resumes with the same evidence, seen set,
// iteration clock and (possibly drifted) profile.
func (s *System) RestoreSession(data []byte) (*Session, error) {
	var snap sessionSnapshot
	if err := json.Unmarshal(data, &snap); err != nil {
		return nil, fmt.Errorf("core: restore: %w", err)
	}
	if snap.Version != snapshotVersion {
		return nil, fmt.Errorf("core: restore: unsupported snapshot version %d", snap.Version)
	}
	if snap.ID == "" {
		return nil, fmt.Errorf("core: restore: snapshot without session id")
	}
	var user *profile.Profile
	if len(snap.Profile) > 0 {
		user = &profile.Profile{}
		if err := json.Unmarshal(snap.Profile, user); err != nil {
			return nil, fmt.Errorf("core: restore profile: %w", err)
		}
	}
	sess := s.NewSession(snap.ID, user)
	sess.step = snap.Step
	sess.lastQuery = snap.LastQuery
	for _, id := range snap.Seen {
		sess.seen[id] = true
	}
	for i, evs := range snap.Evidence {
		ev := feedback.Evidence{
			ShotID: evs.ShotID, Action: evs.Action, Seconds: evs.Seconds,
			ShotSeconds: evs.ShotSeconds, Rating: evs.Rating, Step: evs.Step,
		}
		if !ev.Action.Valid() {
			return nil, fmt.Errorf("core: restore: evidence %d has unknown action %q", i, ev.Action)
		}
		if err := sess.acc.Observe(ev); err != nil {
			return nil, fmt.Errorf("core: restore: evidence %d: %w", i, err)
		}
	}
	// Align the accumulator clock with the restored session clock so
	// ostensive ages match the original session exactly.
	sess.acc.SetStep(snap.Step)
	if sess.acc.Step() > sess.step {
		sess.step = sess.acc.Step()
	}
	return sess, nil
}
