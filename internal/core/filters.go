package core

import (
	"time"

	"repro/internal/collection"
)

// ShotFilter is a retrieval-time predicate over shot IDs (true keeps
// the shot). Filters express the facet browsing both studied
// interfaces offer: "only sports", "only this week's bulletins".
type ShotFilter func(shotID string) bool

// CategoryFilter keeps shots whose story belongs to any of the given
// categories.
func (s *System) CategoryFilter(cats ...collection.Category) ShotFilter {
	want := make(map[collection.Category]bool, len(cats))
	for _, c := range cats {
		want[c] = true
	}
	return func(id string) bool {
		story := s.coll.StoryOfShot(collection.ShotID(id))
		return story != nil && want[story.Category]
	}
}

// BroadcastWindowFilter keeps shots from videos aired in [from, to).
// A zero 'to' means no upper bound; a zero 'from' no lower bound.
func (s *System) BroadcastWindowFilter(from, to time.Time) ShotFilter {
	return func(id string) bool {
		shot := s.coll.Shot(collection.ShotID(id))
		if shot == nil {
			return false
		}
		video := s.coll.Video(shot.VideoID)
		if video == nil {
			return false
		}
		if !from.IsZero() && video.Broadcast.Before(from) {
			return false
		}
		if !to.IsZero() && !video.Broadcast.Before(to) {
			return false
		}
		return true
	}
}

// CombineFilters conjoins filters; nil entries are skipped. A nil or
// empty combination keeps everything.
func CombineFilters(filters ...ShotFilter) ShotFilter {
	active := filters[:0:0]
	for _, f := range filters {
		if f != nil {
			active = append(active, f)
		}
	}
	if len(active) == 0 {
		return nil
	}
	return func(id string) bool {
		for _, f := range active {
			if !f(id) {
				return false
			}
		}
		return true
	}
}
