package core

import (
	"fmt"
	"math"

	"repro/internal/collection"
	"repro/internal/index"
	"repro/internal/search"
	"repro/internal/text"
)

// BuildIndex indexes a collection: each shot becomes one document with
// its ASR transcript plus its story title in the text field (titles
// are what interfaces display, so they are searchable), and its
// detector concepts in the concept field with confidence encoded as
// integer weight (conf 0.73 -> tf 7), so concept retrieval ranks by
// detector confidence.
func BuildIndex(coll *collection.Collection, an *text.Analyzer) (*index.Index, error) {
	if coll == nil {
		return nil, fmt.Errorf("core: nil collection")
	}
	if an == nil {
		an = text.NewAnalyzer()
	}
	b := index.NewBuilder()
	var buildErr error
	coll.Shots(func(s *collection.Shot) bool {
		doc := index.NewDocument(string(s.ID))
		doc.AddTerms(index.FieldText, an.Terms(s.Transcript)...)
		if story := coll.Story(s.StoryID); story != nil {
			doc.AddTerms(index.FieldText, an.Terms(story.Title)...)
		}
		for _, cs := range s.Concepts {
			w := int(math.Round(cs.Confidence * 10))
			if w < 1 {
				w = 1
			}
			doc.SetTermCount(index.FieldConcept, string(cs.Concept), w)
		}
		if err := b.AddDocument(doc); err != nil {
			buildErr = fmt.Errorf("core: indexing shot %s: %w", s.ID, err)
			return false
		}
		return true
	})
	if buildErr != nil {
		return nil, buildErr
	}
	return b.Build(), nil
}

// NewSystemFromCollection is the one-call constructor: analyse, index
// and wire a System over coll.
func NewSystemFromCollection(coll *collection.Collection, cfg Config) (*System, error) {
	an := text.NewAnalyzer()
	ix, err := BuildIndex(coll, an)
	if err != nil {
		return nil, err
	}
	return NewSystem(search.NewEngine(ix, an), coll, cfg)
}
