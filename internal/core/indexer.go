package core

import (
	"fmt"
	"math"

	"repro/internal/collection"
	"repro/internal/index"
	"repro/internal/search"
	"repro/internal/text"
)

// shotDocument converts one shot to an index document: its ASR
// transcript plus its story title in the text field (titles are what
// interfaces display, so they are searchable), and its detector
// concepts in the concept field with confidence encoded as integer
// weight (conf 0.73 -> tf 7), so concept retrieval ranks by detector
// confidence.
func shotDocument(coll *collection.Collection, an *text.Analyzer, s *collection.Shot) *index.Document {
	doc := index.NewDocument(string(s.ID))
	doc.AddTerms(index.FieldText, an.Terms(s.Transcript)...)
	if story := coll.Story(s.StoryID); story != nil {
		doc.AddTerms(index.FieldText, an.Terms(story.Title)...)
	}
	for _, cs := range s.Concepts {
		w := int(math.Round(cs.Confidence * 10))
		if w < 1 {
			w = 1
		}
		doc.SetTermCount(index.FieldConcept, string(cs.Concept), w)
	}
	return doc
}

// indexCollection feeds every shot of coll into add (a Builder or
// ShardedBuilder ingest function).
func indexCollection(coll *collection.Collection, an *text.Analyzer, add func(*index.Document) error) error {
	if coll == nil {
		return fmt.Errorf("core: nil collection")
	}
	var buildErr error
	coll.Shots(func(s *collection.Shot) bool {
		if err := add(shotDocument(coll, an, s)); err != nil {
			buildErr = fmt.Errorf("core: indexing shot %s: %w", s.ID, err)
			return false
		}
		return true
	})
	return buildErr
}

// BuildIndex indexes a collection into a single monolithic index.
func BuildIndex(coll *collection.Collection, an *text.Analyzer) (*index.Index, error) {
	if an == nil {
		an = text.NewAnalyzer()
	}
	b := index.NewBuilder()
	if err := indexCollection(coll, an, b.AddDocument); err != nil {
		return nil, err
	}
	return b.Build(), nil
}

// BuildShardedIndex indexes a collection into `segments` self-contained
// index segments (round-robin by shot order), the layout the parallel
// search executor fans out over. Global document IDs and ranking
// output match BuildIndex exactly.
func BuildShardedIndex(coll *collection.Collection, an *text.Analyzer, segments int) (*index.Sharded, error) {
	if an == nil {
		an = text.NewAnalyzer()
	}
	b := index.NewShardedBuilder(segments)
	if err := indexCollection(coll, an, b.AddDocument); err != nil {
		return nil, err
	}
	return b.Build()
}

// NewSystemFromCollection is the one-call constructor: analyse, index
// and wire a System over coll. Config.Segments > 1 builds a sharded
// index behind a parallel fan-out engine; rankings are identical
// either way.
func NewSystemFromCollection(coll *collection.Collection, cfg Config) (*System, error) {
	an := text.NewAnalyzer()
	var engine *search.Engine
	if cfg.Segments > 1 {
		sh, err := BuildShardedIndex(coll, an, cfg.Segments)
		if err != nil {
			return nil, err
		}
		engine = search.NewShardedEngine(sh, an, cfg.SearchWorkers)
	} else {
		ix, err := BuildIndex(coll, an)
		if err != nil {
			return nil, err
		}
		engine = search.NewEngine(ix, an)
	}
	return NewSystem(engine, coll, cfg)
}
