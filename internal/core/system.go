// Package core implements the paper's primary contribution: an
// adaptive video retrieval model that combines a ranked-retrieval
// engine with (a) static user profiles and (b) implicit relevance
// feedback accumulated from interface interactions, per the paper's
// RQ3 ("how both static user profiles and implicit relevance feedback
// should be combined to adapt to the users need").
//
// The model is packaged as a System (the wiring plus adaptation
// switches) producing Sessions (per-user, per-task state machines).
// Turning both switches off yields the non-adaptive baseline the
// experiments compare against.
package core

import (
	"fmt"
	"sort"

	"repro/internal/collection"
	"repro/internal/feedback"
	"repro/internal/index"
	"repro/internal/retrieval"
	"repro/internal/search"
	"repro/internal/text"
	"repro/internal/trace"
)

// Config selects and parameterises the adaptation behaviours.
type Config struct {
	// UseProfile enables static-profile re-ranking.
	UseProfile bool
	// UseImplicit enables implicit-feedback query expansion.
	UseImplicit bool

	// Scorer ranks candidates (default BM25).
	Scorer search.Scorer
	// K is the result-list depth (default search.DefaultK).
	K int

	// ProfileAlpha scales the profile boost relative to the top
	// retrieval score (0.2 means a fully-liked category can gain 20%
	// of the top score). Default 0.2.
	ProfileAlpha float64
	// ProfileLearnRate drifts the profile from positive implicit
	// evidence (0 disables drift). Default 0.
	ProfileLearnRate float64

	// Scheme weighs implicit evidence (default graded).
	Scheme feedback.Scheme
	// ExpandTerms and ExpandBeta control Rocchio expansion (defaults
	// 10 terms, beta 0.4).
	ExpandTerms int
	ExpandBeta  float64
	// ExpandMassSaturation scales expansion strength by evidence
	// confidence: the effective beta is ExpandBeta *
	// min(1, totalPositiveMass/ExpandMassSaturation), so a session
	// with one tentative click adapts gently while an evidence-rich
	// session adapts at full strength. Default 2 (about two
	// full-quality interactions).
	ExpandMassSaturation float64

	// Segments splits the inverted index into this many self-contained
	// segments, scored concurrently on a worker pool and merged; the
	// ranking is identical to the single-segment scan. 0 or 1 keeps
	// one segment.
	Segments int
	// SearchWorkers bounds the fan-out worker pool on a multi-segment
	// system (0 = GOMAXPROCS).
	SearchWorkers int
	// CacheSize bounds the evidence-keyed result cache in entries
	// (0 disables caching). Cached rankings are keyed on (normalized
	// query, evidence-state fingerprint, configuration), so a new
	// implicit event invalidates naturally by changing the key; the
	// cache is shared by all of the system's sessions.
	CacheSize int
}

// withDefaults fills zero values.
func (c Config) withDefaults() Config {
	if c.Scorer == nil {
		c.Scorer = search.BM25{}
	}
	if c.K == 0 {
		c.K = search.DefaultK
	}
	if c.ProfileAlpha == 0 {
		c.ProfileAlpha = 0.2
	}
	if c.Scheme == nil {
		c.Scheme = feedback.DefaultGraded()
	}
	if c.ExpandTerms == 0 {
		c.ExpandTerms = 10
	}
	if c.ExpandBeta == 0 {
		c.ExpandBeta = 0.4
	}
	if c.ExpandMassSaturation == 0 {
		c.ExpandMassSaturation = 2
	}
	return c
}

// validate rejects incoherent configurations.
func (c Config) validate() error {
	switch {
	case c.K < 0:
		return fmt.Errorf("core: negative K")
	case c.ProfileAlpha < 0:
		return fmt.Errorf("core: negative ProfileAlpha")
	case c.ProfileLearnRate < 0 || c.ProfileLearnRate > 1:
		return fmt.Errorf("core: ProfileLearnRate %v outside [0,1]", c.ProfileLearnRate)
	case c.ExpandTerms < 0:
		return fmt.Errorf("core: negative ExpandTerms")
	case c.ExpandBeta < 0:
		return fmt.Errorf("core: negative ExpandBeta")
	case c.ExpandMassSaturation < 0:
		return fmt.Errorf("core: negative ExpandMassSaturation")
	case c.Segments < 0:
		return fmt.Errorf("core: negative Segments")
	case c.SearchWorkers < 0:
		return fmt.Errorf("core: negative SearchWorkers")
	case c.CacheSize < 0:
		return fmt.Errorf("core: negative CacheSize")
	}
	return nil
}

// Preset names for the four systems the T1 experiment compares.
const (
	PresetBaseline = "baseline"
	PresetProfile  = "profile"
	PresetImplicit = "implicit"
	PresetCombined = "combined"
)

// Preset returns the named adaptation configuration.
func Preset(name string) (Config, error) {
	switch name {
	case PresetBaseline:
		return Config{}, nil
	case PresetProfile:
		return Config{UseProfile: true}, nil
	case PresetImplicit:
		return Config{UseImplicit: true}, nil
	case PresetCombined:
		return Config{UseProfile: true, UseImplicit: true}, nil
	}
	return Config{}, fmt.Errorf("core: unknown preset %q", name)
}

// Presets lists the four system names in comparison order.
func Presets() []string {
	return []string{PresetBaseline, PresetProfile, PresetImplicit, PresetCombined}
}

// System is the wired adaptive retrieval model over one collection.
// It is immutable after construction and safe for concurrent Sessions;
// the embedded result cache and segment-timing collectors are
// internally synchronised.
type System struct {
	engine   *search.Engine
	coll     *collection.Collection
	config   Config
	expander *feedback.Expander
	// cache is the evidence-keyed result cache shared by every
	// session (nil when Config.CacheSize is 0).
	cache *retrieval.Cache
	// cfgKey is the configuration component of cache keys, fixed at
	// construction because the config is immutable.
	cfgKey string
	// segTimings collects per-segment scoring latency for /metrics.
	segTimings *retrieval.SegmentTimings
	// backendSnap, when wired (SetBackendTelemetry), contributes the
	// distributed merge tier's per-backend RPC telemetry to
	// RetrievalSnapshot.
	backendSnap func() []retrieval.BackendSummary
	// stageSnap, when wired (SetStageTelemetry), contributes per-stage
	// duration quantiles from the trace collector to RetrievalSnapshot.
	stageSnap func() []trace.StageSummary
	// budgetSnap, when wired (SetRetryBudgetTelemetry), contributes the
	// merge tier's retry token bucket to RetrievalSnapshot.
	budgetSnap func() retrieval.RetryBudgetSummary
}

// NewSystem wires a system. engine and coll must be non-nil and built
// over the same collection (shot IDs are the join key). NewSystem
// installs the system's telemetry hook on the engine, so an engine
// should back at most one system.
func NewSystem(engine *search.Engine, coll *collection.Collection, cfg Config) (*System, error) {
	if engine == nil || coll == nil {
		return nil, fmt.Errorf("core: engine and collection are required")
	}
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	cfg = cfg.withDefaults()
	s := &System{
		engine: engine,
		coll:   coll,
		config: cfg,
		cache:  retrieval.NewCache(cfg.CacheSize),
	}
	s.cfgKey = configKey(cfg)
	segDocs := make([]int, engine.NumSegments())
	for i := range segDocs {
		segDocs[i] = engine.SegmentDocs(i)
	}
	s.segTimings = retrieval.NewSegmentTimings(segDocs)
	engine.SetSegmentObserver(s.segTimings.Observe)
	// The expander reads statistics through the engine so it works
	// identically over single and sharded indexes.
	s.expander = feedback.NewExpander(engine.Analyzer(),
		func(id string) (string, bool) {
			shot := coll.Shot(collection.ShotID(id))
			if shot == nil {
				return "", false
			}
			return shot.Transcript, true
		},
		func(term string) int { return engine.DocFreq(index.FieldText, term) },
		engine.NumDocs())
	return s, nil
}

// configKey renders every config field that influences a ranking into
// the cache key's configuration component. Scorer and Scheme are
// parameterised values, so their rendered forms (not just names)
// participate.
func configKey(cfg Config) string {
	return fmt.Sprintf("implicit=%v|scorer=%T%+v|k=%d|scheme=%s|expand=%d,%g,%g",
		cfg.UseImplicit, cfg.Scorer, cfg.Scorer, cfg.K,
		cfg.Scheme.Name(), cfg.ExpandTerms, cfg.ExpandBeta, cfg.ExpandMassSaturation)
}

// Cache exposes the shared result cache (nil when disabled).
func (s *System) Cache() *retrieval.Cache { return s.cache }

// SetBackendTelemetry wires the distributed merge tier's per-backend
// snapshot into RetrievalSnapshot (ivrserve calls this with
// Cluster.BackendSummaries when -segment-addrs is set). Install at
// wiring time, before the system serves queries.
func (s *System) SetBackendTelemetry(fn func() []retrieval.BackendSummary) { s.backendSnap = fn }

// SetStageTelemetry wires the trace collector's per-stage duration
// quantiles into RetrievalSnapshot (the web API calls this with its
// collector's StageSummaries). Install at wiring time, before the
// system serves queries.
func (s *System) SetStageTelemetry(fn func() []trace.StageSummary) { s.stageSnap = fn }

// SetRetryBudgetTelemetry wires the merge tier's retry-budget snapshot
// into RetrievalSnapshot (ivrserve calls this alongside
// SetBackendTelemetry when serving a distributed topology).
func (s *System) SetRetryBudgetTelemetry(fn func() retrieval.RetryBudgetSummary) { s.budgetSnap = fn }

// RetrievalSnapshot reports the engine-layer telemetry: cache
// counters, per-segment scoring latency, the scoring kernel's pool
// counters, and — on a distributed system — per-backend RPC counters.
func (s *System) RetrievalSnapshot() retrieval.Snapshot {
	snap := retrieval.Snapshot{
		Cache:    s.cache.Stats(),
		Segments: s.segTimings.Summaries(),
		Workers:  s.engine.Workers(),
		Kernel:   search.ReadKernelStats(),
	}
	if s.backendSnap != nil {
		snap.Backends = s.backendSnap()
	}
	if s.stageSnap != nil {
		snap.Stages = s.stageSnap()
	}
	if s.budgetSnap != nil {
		rb := s.budgetSnap()
		snap.RetryBudget = &rb
	}
	return snap
}

// Config returns the system's effective configuration.
func (s *System) Config() Config { return s.config }

// Engine exposes the underlying search engine.
func (s *System) Engine() *search.Engine { return s.engine }

// Collection exposes the underlying collection.
func (s *System) Collection() *collection.Collection { return s.coll }

// Analyzer returns the text pipeline shared by indexing and querying.
func (s *System) Analyzer() *text.Analyzer { return s.engine.Analyzer() }

// shotCategory resolves a shot's news category (ok=false for unknown
// shots).
func (s *System) shotCategory(id string) (collection.Category, bool) {
	st := s.coll.StoryOfShot(collection.ShotID(id))
	if st == nil {
		return 0, false
	}
	return st.Category, true
}

// shotSeconds returns a shot's duration in seconds (0 for unknown).
func (s *System) shotSeconds(id string) float64 {
	shot := s.coll.Shot(collection.ShotID(id))
	if shot == nil {
		return 0
	}
	return shot.Duration.Seconds()
}

// SearchOnce runs a plain, non-adapted query: the stateless baseline.
func (s *System) SearchOnce(queryText string) (search.Results, error) {
	q := s.engine.ParseText(queryText)
	return s.engine.Search(q, search.Options{K: s.config.K, Scorer: s.config.Scorer})
}

// SearchWithConcepts combines the text query with concept-detector
// evidence (used by the semantic-gap experiments, where concepts
// complement degraded ASR). The combination is asymmetric, reflecting
// the era's reliability gap between the two modalities:
//
//   - text hits are *rescored*: each gains conceptWeight x its
//     normalised concept score relative to the top text score, so
//     concept agreement reorders but never ejects text evidence;
//   - concept-only hits (shots whose transcript lost the query terms)
//     are *backfilled* after the text hits, recovering recall that ASR
//     errors destroyed.
func (s *System) SearchWithConcepts(queryText string, concepts []string, conceptWeight float64) (search.Results, error) {
	if conceptWeight < 0 || conceptWeight > 1 {
		return search.Results{}, fmt.Errorf("core: concept weight %v outside [0,1]", conceptWeight)
	}
	tq := s.engine.ParseText(queryText)
	tr, err := s.engine.Search(tq, search.Options{K: s.config.K, Scorer: s.config.Scorer})
	if err != nil {
		return search.Results{}, err
	}
	if len(concepts) == 0 || conceptWeight == 0 {
		return tr, nil
	}
	cr, err := s.engine.Search(search.ConceptQuery(concepts...), search.Options{K: s.config.K, Scorer: s.config.Scorer})
	if err != nil {
		return search.Results{}, err
	}
	if len(cr.Hits) == 0 {
		return tr, nil
	}
	// Normalised concept score per shot.
	topConcept := cr.Hits[0].Score
	cscore := make(map[string]float64, len(cr.Hits))
	for _, h := range cr.Hits {
		if topConcept > 0 {
			cscore[h.ID] = h.Score / topConcept
		}
	}
	inText := make(map[string]bool, len(tr.Hits))
	var fused []search.Hit
	var scale float64
	if len(tr.Hits) > 0 {
		scale = conceptWeight * tr.Hits[0].Score
	}
	for _, h := range tr.Hits {
		inText[h.ID] = true
		h.Score += scale * cscore[h.ID]
		fused = append(fused, h)
	}
	sortHits(fused)
	// Backfill concept-only candidates below the weakest text hit.
	floor := 0.0
	if len(fused) > 0 {
		floor = fused[len(fused)-1].Score
	}
	for _, h := range cr.Hits {
		if inText[h.ID] {
			continue
		}
		fused = append(fused, search.Hit{
			ID:    h.ID,
			Doc:   h.Doc,
			Score: floor - 1 + conceptWeight*cscore[h.ID],
		})
	}
	if len(fused) > s.config.K {
		fused = fused[:s.config.K]
	}
	return search.Results{Hits: fused, Candidates: len(fused)}, nil
}

// sortHits orders by descending score with ID ties ascending (the
// engine's canonical order).
func sortHits(hits []search.Hit) {
	sort.Slice(hits, func(i, j int) bool {
		if hits[i].Score != hits[j].Score {
			return hits[i].Score > hits[j].Score
		}
		return hits[i].ID < hits[j].ID
	})
}
