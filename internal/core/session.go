package core

import (
	"context"
	"fmt"
	"strconv"

	"repro/internal/feedback"
	"repro/internal/ilog"
	"repro/internal/profile"
	"repro/internal/retrieval"
	"repro/internal/search"
	"repro/internal/trace"
)

// Session is one user's search session against a System: it holds the
// user's static profile, the implicit evidence observed so far, and
// the iteration clock that drives ostensive decay. Sessions are not
// safe for concurrent use; create one per goroutine.
type Session struct {
	sys  *System
	id   string
	user *profile.Profile
	acc  *feedback.Accumulator
	// step counts query iterations; evidence is stamped with the step
	// it arrived in.
	step int
	// seen records every shot returned to the user, for exploration
	// metrics and optional filtering.
	seen map[string]bool
	// lastQuery remembers the most recent query text.
	lastQuery string
}

// NewSession starts a session. A nil user gets a fresh neutral
// profile (profile re-ranking then has no effect until drift occurs).
func (s *System) NewSession(id string, user *profile.Profile) *Session {
	if user == nil {
		user = profile.New(id)
	}
	return &Session{
		sys:  s,
		id:   id,
		user: user,
		acc:  feedback.NewAccumulator(s.config.Scheme),
		seen: make(map[string]bool),
	}
}

// ID returns the session identifier.
func (sess *Session) ID() string { return sess.id }

// User returns the session's profile (live; drift mutates it).
func (sess *Session) User() *profile.Profile { return sess.user }

// Step returns the current query-iteration count.
func (sess *Session) Step() int { return sess.step }

// EvidenceCount reports how much implicit evidence has been observed.
func (sess *Session) EvidenceCount() int { return sess.acc.Len() }

// SeenShots returns how many distinct shots have been shown.
func (sess *Session) SeenShots() int { return len(sess.seen) }

// HasSeen reports whether a shot was already returned in this session.
func (sess *Session) HasSeen(shotID string) bool { return sess.seen[shotID] }

// Query runs one adapted retrieval iteration:
//
//  1. parse the text query;
//  2. if implicit adaptation is on, expand it with terms Rocchio-mined
//     from positively-weighted shots (mass under the configured
//     weighting scheme, ostensive decay applied at the current step);
//  3. rank with the configured scorer;
//  4. if profile adaptation is on, rescore by the profile's category
//     boost, scaled to ProfileAlpha of the top retrieval score.
//
// Each call advances the session step.
func (sess *Session) Query(queryText string) (search.Results, error) {
	return sess.QueryFilteredContext(context.Background(), queryText, nil)
}

// QueryContext is Query with a caller context: cancellation reaches
// remote segment backends, and an active trace in ctx records the
// per-stage spans (expand, cache, prepare, segment, merge).
func (sess *Session) QueryContext(ctx context.Context, queryText string) (search.Results, error) {
	return sess.QueryFilteredContext(ctx, queryText, nil)
}

// QueryFiltered is Query with a metadata filter restricting the
// candidate shots (see System.CategoryFilter and friends).
//
// When the system carries a result cache, the retrieval (expansion +
// ranking, everything before the session-specific profile rescore) is
// served from it under the key (normalized query, evidence-state
// fingerprint, config). The evidence fingerprint is computed from the
// feedback accumulator's current relevance mass, so observing a new
// implicit event — or, under step-decaying schemes, merely advancing
// the iteration clock — changes the key and forces re-retrieval: the
// cache can never serve results that predate the session's evidence.
// Filtered queries bypass the cache (filters are opaque predicates).
func (sess *Session) QueryFiltered(queryText string, filter ShotFilter) (search.Results, error) {
	return sess.QueryFilteredContext(context.Background(), queryText, filter)
}

// QueryFilteredContext is QueryFiltered with a caller context (see
// QueryContext).
func (sess *Session) QueryFilteredContext(ctx context.Context, queryText string, filter ShotFilter) (search.Results, error) {
	sys := sess.sys
	q := sys.engine.ParseText(queryText)
	var mass map[string]float64
	if sys.config.UseImplicit {
		mass = sess.acc.Mass()
	}
	retrieve := func() (search.Results, error) {
		rq := q
		if sys.config.UseImplicit {
			// Confidence-scaled expansion: adaptation strength grows
			// with the accumulated positive evidence mass and saturates.
			_, exp := trace.StartSpan(ctx, "expand")
			var totalPos float64
			for _, m := range mass {
				if m > 0 {
					totalPos += m
				}
			}
			beta := sys.config.ExpandBeta
			if sat := sys.config.ExpandMassSaturation; sat > 0 && totalPos < sat {
				beta *= totalPos / sat
			}
			rq = sys.expander.Expand(rq, mass, sys.config.ExpandTerms, beta)
			if exp != nil {
				exp.SetAttr("terms", strconv.Itoa(len(rq.Terms)))
				exp.End()
			}
		}
		return sys.engine.SearchContext(ctx, rq, search.Options{
			K:      sys.config.K,
			Scorer: sys.config.Scorer,
			Filter: filter,
		})
	}
	var res search.Results
	var err error
	if sys.cache.Enabled() && filter == nil {
		key := retrieval.Key(retrieval.QueryKey(q), retrieval.EvidenceKey(mass), sys.cfgKey)
		cctx, csp := trace.StartSpan(ctx, "cache")
		ctx = cctx // nested expand/search spans belong under "cache"
		var hit bool
		res, hit, err = sys.cache.Do(key, retrieve)
		if csp != nil {
			csp.SetAttr("hit", strconv.FormatBool(hit))
			csp.End()
		}
	} else {
		res, err = retrieve()
	}
	if err != nil {
		return search.Results{}, err
	}
	if sys.config.UseProfile && len(res.Hits) > 0 {
		scale := sys.config.ProfileAlpha * res.Hits[0].Score
		res.Hits = search.Rescore(res.Hits, scale, func(id string) float64 {
			cat, ok := sys.shotCategory(id)
			if !ok {
				return 0
			}
			return sess.user.Boost(cat)
		})
	}
	for _, h := range res.Hits {
		sess.seen[h.ID] = true
	}
	sess.lastQuery = queryText
	sess.step++
	sess.acc.AdvanceStep()
	return res, nil
}

// LastQuery returns the most recent query text ("" before any query).
func (sess *Session) LastQuery() string { return sess.lastQuery }

// Observe feeds one interaction event into the session: the event
// becomes weighted implicit evidence, and (when ProfileLearnRate > 0)
// positive evidence drifts the profile toward the shot's category.
// Events without a shot target (queries, browses without target) are
// recorded as no-ops.
func (sess *Session) Observe(e ilog.Event) error {
	if err := e.Validate(); err != nil {
		return fmt.Errorf("core: observe: %w", err)
	}
	// Stamp the event with the session clock if the caller didn't.
	if e.Step == 0 && sess.step > 0 {
		e.Step = sess.step - 1
	}
	ev, ok := feedback.FromEvent(e, sess.sys.shotSeconds(e.ShotID))
	if !ok {
		return nil
	}
	if err := sess.acc.Observe(ev); err != nil {
		return err
	}
	lr := sess.sys.config.ProfileLearnRate
	if lr > 0 {
		if cat, ok := sess.sys.shotCategory(e.ShotID); ok {
			w := sess.acc.Scheme().Weight(ev, sess.acc.Step())
			switch {
			case w > 0:
				sess.user.Update(cat, 1, lr*minf(w, 1))
			case w < 0:
				sess.user.Update(cat, 0, lr*minf(-w, 1))
			}
		}
	}
	return nil
}

// ObserveAll feeds a batch of events, stopping at the first error.
func (sess *Session) ObserveAll(events []ilog.Event) error {
	for i, e := range events {
		if err := sess.Observe(e); err != nil {
			return fmt.Errorf("event %d: %w", i, err)
		}
	}
	return nil
}

// Mass exposes the current per-shot implicit relevance mass (a copy).
func (sess *Session) Mass() map[string]float64 { return sess.acc.Mass() }

// EvidenceFingerprint returns the evidence component of the session's
// result-cache key, derived from the current implicit relevance mass.
// A changed fingerprint guarantees the next query re-retrieves instead
// of reusing a cached ranking. Always 0 when implicit adaptation is
// off (the ranking then does not depend on evidence).
func (sess *Session) EvidenceFingerprint() uint64 {
	if !sess.sys.config.UseImplicit {
		return 0
	}
	return retrieval.EvidenceKey(sess.acc.Mass())
}

// Reset clears evidence, the seen set and the step clock, keeping the
// profile (a new task for the same user).
func (sess *Session) Reset() {
	sess.acc.Reset()
	sess.seen = make(map[string]bool)
	sess.step = 0
	sess.lastQuery = ""
}

func minf(a, b float64) float64 {
	if a < b {
		return a
	}
	return b
}
