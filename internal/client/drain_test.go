package client_test

import (
	"context"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/client"
)

// drainThenServe answers the first n requests like a draining replica
// and the rest with the given success body.
func drainThenServe(n int, status int, body any) (*httptest.Server, *atomic.Int64) {
	var calls atomic.Int64
	h := http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if calls.Add(1) <= int64(n) {
			w.Header().Set("Retry-After", "0")
			w.Header().Set("Content-Type", "application/json")
			w.WriteHeader(http.StatusServiceUnavailable)
			_ = json.NewEncoder(w).Encode(map[string]any{
				"error": map[string]string{"code": "draining", "message": "replica draining"},
			})
			return
		}
		w.Header().Set("Content-Type", "application/json")
		w.WriteHeader(status)
		_ = json.NewEncoder(w).Encode(body)
	})
	return httptest.NewServer(h), &calls
}

func TestDrainRetrySucceeds(t *testing.T) {
	// Search is a retryNever call: a plain 5xx must not be retried,
	// but a draining 503 must be — it is rejected before any session
	// state moves, so the virtual user should never see it.
	ts, calls := drainThenServe(3, http.StatusOK, map[string]any{
		"session_id": "s1", "query": "q", "hits": []any{},
	})
	defer ts.Close()
	c, err := client.New(ts.URL) // note: no WithRetry at all
	if err != nil {
		t.Fatal(err)
	}
	page, err := c.Search(context.Background(), client.SearchRequest{SessionID: "s1", Query: "q"})
	if err != nil {
		t.Fatalf("search through draining replica: %v", err)
	}
	if page.SessionID != "s1" {
		t.Fatalf("page = %+v", page)
	}
	if got := calls.Load(); got != 4 {
		t.Fatalf("server saw %d requests, want 4 (3 drained + 1 ok)", got)
	}
}

func TestDrainRetryBudgetExhausts(t *testing.T) {
	ts, _ := drainThenServe(1000, http.StatusOK, nil)
	defer ts.Close()
	c, err := client.New(ts.URL)
	if err != nil {
		t.Fatal(err)
	}
	_, err = c.Search(context.Background(), client.SearchRequest{SessionID: "s1", Query: "q"})
	if !client.IsDraining(err) {
		t.Fatalf("err = %v, want draining APIError after budget exhausted", err)
	}
}

func TestDrainRetryHonorsRetryAfter(t *testing.T) {
	// The server asks for 1s; the client must not hammer sooner.
	var calls atomic.Int64
	var firstRetry atomic.Int64
	start := time.Now()
	h := http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if calls.Add(1) == 1 {
			w.Header().Set("Retry-After", "1")
			w.WriteHeader(http.StatusServiceUnavailable)
			_, _ = w.Write([]byte(`{"error":{"code":"draining","message":"draining"}}`))
			return
		}
		firstRetry.Store(int64(time.Since(start)))
		w.WriteHeader(http.StatusOK)
		_, _ = w.Write([]byte(`{"session_id":"s1"}`))
	})
	ts := httptest.NewServer(h)
	defer ts.Close()
	c, err := client.New(ts.URL)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := c.Search(context.Background(), client.SearchRequest{SessionID: "s1", Query: "q"}); err != nil {
		t.Fatal(err)
	}
	if waited := time.Duration(firstRetry.Load()); waited < 900*time.Millisecond {
		t.Fatalf("client retried after %v, Retry-After asked for 1s", waited)
	}
}

func TestDrainRetryRespectsContext(t *testing.T) {
	ts, _ := drainThenServe(1000, http.StatusOK, nil)
	defer ts.Close()
	c, err := client.New(ts.URL)
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 50*time.Millisecond)
	defer cancel()
	_, err = c.Search(ctx, client.SearchRequest{SessionID: "s1", Query: "q"})
	if err == nil {
		t.Fatal("search returned nil under an expired context")
	}
}

func TestPlainServerErrorStillNotRetried(t *testing.T) {
	// A non-draining 500 on a retryNever call surfaces immediately.
	var calls atomic.Int64
	h := http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		calls.Add(1)
		w.WriteHeader(http.StatusInternalServerError)
		_, _ = w.Write([]byte(`{"error":{"code":"internal","message":"boom"}}`))
	})
	ts := httptest.NewServer(h)
	defer ts.Close()
	c, err := client.New(ts.URL)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := c.Search(context.Background(), client.SearchRequest{SessionID: "s1", Query: "q"}); err == nil {
		t.Fatal("500 swallowed")
	}
	if calls.Load() != 1 {
		t.Fatalf("retryNever call retried: %d requests", calls.Load())
	}
}
