// Package client is the typed Go SDK for the webapi /api/v1 surface.
// Every consumer of the retrieval service — CLI tools, examples,
// simulators, load generators — talks through a Client instead of
// hand-rolling HTTP, so the wire contract lives in exactly two places
// (webapi encodes it, client decodes it).
//
// Usage:
//
//	c, _ := client.New("http://localhost:8080",
//	        client.WithTimeout(5*time.Second),
//	        client.WithRetry(3, 200*time.Millisecond))
//	id, _ := c.CreateSession(ctx, client.CreateSessionRequest{UserID: "alice"})
//	page, _ := c.Search(ctx, client.SearchRequest{SessionID: id, Query: "cup final"})
//	_, _ = c.SendEvents(ctx, id, []ilog.Event{ /* clicks, plays */ })
//
// Server-side errors decode into *APIError carrying the envelope's
// code and message; IsNotFound distinguishes missing sessions/shots.
package client

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"net/url"
	"strconv"
	"strings"
	"sync"
	"time"

	"repro/internal/ilog"
	"repro/internal/metrics"
	"repro/internal/overload"
	"repro/internal/retrieval"
	"repro/internal/trace"
)

// Client calls one webapi server. Safe for concurrent use.
type Client struct {
	baseURL    string
	httpClient *http.Client
	retries    int
	backoff    time.Duration
	userAgent  string
	budget     *retryBudget
}

// Option configures a Client.
type Option func(*options)

type options struct {
	httpClient  *http.Client
	timeout     time.Duration
	retries     int
	backoff     time.Duration
	userAgent   string
	retryRatio  float64
	retryBurst  int
	budgetIsSet bool
}

// WithHTTPClient substitutes the underlying *http.Client (default: a
// dedicated client with a 30s timeout).
func WithHTTPClient(hc *http.Client) Option {
	return func(o *options) { o.httpClient = hc }
}

// WithTimeout bounds each HTTP attempt (default 30s). Ignored when
// WithHTTPClient is given, regardless of option order.
func WithTimeout(d time.Duration) Option {
	return func(o *options) { o.timeout = d }
}

// WithRetry retries side-effect-free requests (session state, shot
// metadata, healthz) up to n extra times on network errors and 5xx
// responses, sleeping backoff, 2x backoff, ... between attempts.
// Search is never retried automatically — every search advances the
// session's adaptation step, so a blind replay would double-adapt.
// Default: no retries.
func WithRetry(n int, backoff time.Duration) Option {
	return func(o *options) {
		o.retries = n
		o.backoff = backoff
	}
}

// WithUserAgent sets the User-Agent header (default "repro-client/1").
func WithUserAgent(ua string) Option {
	return func(o *options) { o.userAgent = ua }
}

// WithRetryBudget bounds every class of automatic retry (5xx/network
// replays, drain waits, overload waits) to a token bucket: each
// primary request earns ratio tokens, each retry spends one, and the
// bucket caps at burst. A drowning server therefore sees retry traffic
// bounded at ~ratio of the primary rate instead of a synchronized
// retry storm. ratio <= 0 disables the bound. Default: ratio 0.1,
// burst 16.
func WithRetryBudget(ratio float64, burst int) Option {
	return func(o *options) {
		o.retryRatio = ratio
		o.retryBurst = burst
		o.budgetIsSet = true
	}
}

// New builds a client for a server base URL such as
// "http://localhost:8080" (any path suffix is stripped of one
// trailing slash; "/api/v1" is appended per call).
func New(baseURL string, opts ...Option) (*Client, error) {
	u, err := url.Parse(baseURL)
	if err != nil || u.Scheme == "" || u.Host == "" {
		return nil, fmt.Errorf("client: invalid base URL %q", baseURL)
	}
	o := options{userAgent: "repro-client/1"}
	for _, opt := range opts {
		opt(&o)
	}
	if o.retries < 0 {
		return nil, fmt.Errorf("client: negative retry count")
	}
	hc := o.httpClient
	if hc == nil {
		timeout := o.timeout
		if timeout == 0 {
			timeout = 30 * time.Second
		}
		hc = &http.Client{Timeout: timeout}
	}
	if !o.budgetIsSet {
		o.retryRatio, o.retryBurst = 0.1, 16
	}
	return &Client{
		baseURL:    strings.TrimSuffix(baseURL, "/"),
		httpClient: hc,
		retries:    o.retries,
		backoff:    o.backoff,
		userAgent:  o.userAgent,
		budget:     newRetryBudget(o.retryRatio, o.retryBurst),
	}, nil
}

// BaseURL reports the server this client targets (no trailing slash).
func (c *Client) BaseURL() string { return c.baseURL }

// APIError is a non-2xx server response decoded from the error
// envelope {"error":{"code","message"}}.
type APIError struct {
	// StatusCode is the HTTP status.
	StatusCode int
	// Code is the machine-readable envelope code ("not_found", ...).
	Code string
	// Message is the human-readable envelope message.
	Message string
	// RequestID echoes the X-Request-Id header for log correlation.
	RequestID string
	// RetryAfter is the server's Retry-After hint (0 when absent).
	RetryAfter time.Duration
}

func (e *APIError) Error() string {
	return fmt.Sprintf("api: %d %s: %s", e.StatusCode, e.Code, e.Message)
}

// Envelope codes the SDK gives typed treatment.
const (
	// CodeDraining is the envelope code a replica answers with while it
	// hands its sessions off during graceful shutdown.
	CodeDraining = "draining"
	// CodeOverloaded is the typed admission shed: the tier is at its
	// concurrency limit and asks the client to back off (Retry-After).
	CodeOverloaded = "overloaded"
	// CodeDeadline marks a request whose deadline budget was spent
	// somewhere in the stack before a full answer existed.
	CodeDeadline = "deadline_exceeded"
)

// IsNotFound reports whether err is a 404 APIError (unknown session,
// shot, or route).
func IsNotFound(err error) bool {
	var ae *APIError
	return errors.As(err, &ae) && ae.StatusCode == http.StatusNotFound
}

// IsDraining reports whether err is a 503 from a draining replica.
func IsDraining(err error) bool {
	var ae *APIError
	return errors.As(err, &ae) && ae.StatusCode == http.StatusServiceUnavailable && ae.Code == CodeDraining
}

// IsOverloaded reports whether err is a typed 429 admission shed.
func IsOverloaded(err error) bool {
	var ae *APIError
	return errors.As(err, &ae) && ae.StatusCode == http.StatusTooManyRequests && ae.Code == CodeOverloaded
}

// IsDeadlineExceeded reports whether err is the server's typed 504:
// the request's deadline budget was spent before a full answer
// existed.
func IsDeadlineExceeded(err error) bool {
	var ae *APIError
	return errors.As(err, &ae) && ae.Code == CodeDeadline
}

// CreateSessionRequest optionally declares a static user profile.
type CreateSessionRequest struct {
	UserID string `json:"user_id"`
	// Interests maps category names ("sports") to [0,1].
	Interests map[string]float64 `json:"interests,omitempty"`
}

// SessionState is a session's public state.
type SessionState struct {
	SessionID string             `json:"session_id"`
	Step      int                `json:"step"`
	Evidence  int                `json:"evidence"`
	SeenShots int                `json:"seen_shots"`
	LastQuery string             `json:"last_query"`
	Interests map[string]float64 `json:"interests"`
}

// Hit is one ranked result with display metadata.
type Hit struct {
	Rank     int     `json:"rank"`
	ShotID   string  `json:"shot_id"`
	Score    float64 `json:"score"`
	StoryID  string  `json:"story_id"`
	Title    string  `json:"title"`
	Category string  `json:"category"`
	Seconds  float64 `json:"seconds"`
}

// SearchRequest parameterises one adapted-search iteration.
type SearchRequest struct {
	SessionID string
	Query     string
	// Offset/Limit window the ranking (Limit 0 = server default).
	Offset int
	Limit  int
	// Categories facets results ("sports", "politics", ...).
	Categories []string
	// Trace asks the server to echo its span tree (X-IVR-Trace: 1);
	// the decoded tree lands in SearchPage.Trace. Against the router
	// the tree covers every tier the query crossed.
	Trace bool
}

// SearchPage is one page of an adapted ranking.
type SearchPage struct {
	SessionID  string `json:"session_id"`
	Query      string `json:"query"`
	Step       int    `json:"step"`
	Candidates int    `json:"candidates"`
	Total      int    `json:"total"`
	Offset     int    `json:"offset"`
	Limit      int    `json:"limit"`
	// Partial marks a degraded-mode page: the ranking covers only the
	// segments that answered before the system hit overload or partial
	// failure. Complete and correctly merged over that subset — but not
	// the full collection.
	Partial bool  `json:"partial"`
	Hits    []Hit `json:"hits"`
	// RequestID is the response's correlation ID (set from the
	// X-Request-Id header, not the body).
	RequestID string `json:"-"`
	// Trace is the server's span tree, present only when the request
	// set Trace and the server echoed one.
	Trace *trace.Span `json:"-"`
}

// StreamSummary closes a streamed search.
type StreamSummary struct {
	SessionID  string `json:"session_id"`
	Query      string `json:"query"`
	Step       int    `json:"step"`
	Candidates int    `json:"candidates"`
	Total      int    `json:"total"`
	Partial    bool   `json:"partial"`
}

// Shot is the shot metadata a front-end renders.
type Shot struct {
	ShotID     string   `json:"shot_id"`
	VideoID    string   `json:"video_id"`
	StoryID    string   `json:"story_id"`
	Title      string   `json:"title"`
	Category   string   `json:"category"`
	Kind       string   `json:"kind"`
	Seconds    float64  `json:"seconds"`
	Transcript string   `json:"transcript"`
	Keyframes  int      `json:"keyframes"`
	Concepts   []string `json:"concepts"`
}

// Health is the liveness body with session-table stats.
type Health struct {
	Status   string `json:"status"`
	Replica  string `json:"replica"`
	Draining bool   `json:"draining"`
	Sessions int    `json:"sessions"`
	Created  int64  `json:"sessions_created"`
	Evicted  int64  `json:"sessions_evicted"`
}

// SessionEntry is one row of the live-session directory.
type SessionEntry struct {
	SessionID   string  `json:"session_id"`
	IdleSeconds float64 `json:"idle_seconds"`
	Step        int     `json:"step"`
	Evidence    int     `json:"evidence"`
	SeenShots   int     `json:"seen_shots"`
	LastQuery   string  `json:"last_query"`
}

// SessionList is one page of the live-session directory.
type SessionList struct {
	Total    int            `json:"total"`
	Offset   int            `json:"offset"`
	Limit    int            `json:"limit"`
	Sessions []SessionEntry `json:"sessions"`
}

// SessionCounters is the session-table section of the metrics body.
type SessionCounters struct {
	Live    int   `json:"live"`
	Created int64 `json:"created"`
	Evicted int64 `json:"evicted"`
	// Durability counters (zero without a session store).
	Restored      int64 `json:"restored"`
	Persisted     int64 `json:"persisted"`
	PersistErrors int64 `json:"persist_errors"`
}

// MetricsSnapshot is the /api/v1/metrics body: per-route request
// counters and latency quantiles (the metrics package owns that
// schema), session-table counters, and the retrieval-engine section
// (result-cache counters plus per-segment fan-out timing; the
// retrieval package owns that schema).
type MetricsSnapshot struct {
	metrics.Snapshot
	Replica  string             `json:"replica"`
	Draining bool               `json:"draining"`
	Sessions SessionCounters    `json:"sessions"`
	Search   retrieval.Snapshot `json:"search"`
}

// CreateSession starts a server-side session and returns its ID.
func (c *Client) CreateSession(ctx context.Context, req CreateSessionRequest) (string, error) {
	var resp struct {
		SessionID string `json:"session_id"`
	}
	if err := c.do(ctx, http.MethodPost, "/sessions", nil, req, &resp, retryNever); err != nil {
		return "", err
	}
	return resp.SessionID, nil
}

// Session fetches a session's state.
func (c *Client) Session(ctx context.Context, id string) (*SessionState, error) {
	var st SessionState
	if err := c.do(ctx, http.MethodGet, "/sessions/"+url.PathEscape(id), nil, nil, &st, retryOK); err != nil {
		return nil, err
	}
	return &st, nil
}

// DeleteSession ends a session.
func (c *Client) DeleteSession(ctx context.Context, id string) error {
	return c.do(ctx, http.MethodDelete, "/sessions/"+url.PathEscape(id), nil, nil, nil, retryNever)
}

// ListSessions fetches one page of the server's live-session
// directory, sorted by session ID (limit 0 = server default).
func (c *Client) ListSessions(ctx context.Context, offset, limit int) (*SessionList, error) {
	q := url.Values{}
	if offset > 0 {
		q.Set("offset", strconv.Itoa(offset))
	}
	if limit > 0 {
		q.Set("limit", strconv.Itoa(limit))
	}
	var list SessionList
	if err := c.do(ctx, http.MethodGet, "/sessions", q, nil, &list, retryOK); err != nil {
		return nil, err
	}
	return &list, nil
}

// Metrics fetches the server's telemetry snapshot: per-route request
// counters, latency quantiles, and session-table stats.
func (c *Client) Metrics(ctx context.Context) (*MetricsSnapshot, error) {
	var m MetricsSnapshot
	if err := c.do(ctx, http.MethodGet, "/metrics", nil, nil, &m, retryOK); err != nil {
		return nil, err
	}
	return &m, nil
}

// searchQuery encodes the shared search parameters.
func searchQuery(req SearchRequest) (url.Values, error) {
	if req.SessionID == "" || req.Query == "" {
		return nil, fmt.Errorf("client: search needs SessionID and Query")
	}
	q := url.Values{}
	q.Set("session", req.SessionID)
	q.Set("q", req.Query)
	if req.Offset > 0 {
		q.Set("offset", strconv.Itoa(req.Offset))
	}
	if req.Limit > 0 {
		q.Set("limit", strconv.Itoa(req.Limit))
	}
	if len(req.Categories) > 0 {
		q.Set("cat", strings.Join(req.Categories, ","))
	}
	return q, nil
}

// Search runs one adapted retrieval iteration and returns the
// requested page. Each call advances the session's adaptation step.
func (c *Client) Search(ctx context.Context, req SearchRequest) (*SearchPage, error) {
	q, err := searchQuery(req)
	if err != nil {
		return nil, err
	}
	var page SearchPage
	var opts []doOpt
	if req.Trace {
		opts = append(opts,
			withHeader(trace.Header, trace.RequestEcho),
			onResponse(func(resp *http.Response) {
				page.RequestID = resp.Header.Get(trace.RequestIDHeader)
				if sp, derr := trace.DecodeSpan(resp.Header.Get(trace.Header)); derr == nil {
					page.Trace = sp
				}
			}))
	}
	if err := c.do(ctx, http.MethodGet, "/search", q, nil, &page, retryNever, opts...); err != nil {
		return nil, err
	}
	return &page, nil
}

// SearchStream runs the same iteration as Search but consumes the
// NDJSON stream, calling fn for every hit as it arrives. A non-nil fn
// error aborts the stream and is returned. The closing summary is
// returned on success.
func (c *Client) SearchStream(ctx context.Context, req SearchRequest, fn func(Hit) error) (*StreamSummary, error) {
	q, err := searchQuery(req)
	if err != nil {
		return nil, err
	}
	httpReq, err := c.newRequest(ctx, http.MethodGet, "/search/stream", q, nil)
	if err != nil {
		return nil, err
	}
	resp, err := c.httpClient.Do(httpReq)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return nil, decodeAPIError(resp)
	}
	sc := bufio.NewScanner(resp.Body)
	sc.Buffer(make([]byte, 0, 64*1024), 1024*1024)
	var summary *StreamSummary
	for sc.Scan() {
		line := bytes.TrimSpace(sc.Bytes())
		if len(line) == 0 {
			continue
		}
		var l struct {
			Type string `json:"type"`
			Hit  *Hit   `json:"hit"`
			StreamSummary
		}
		if err := json.Unmarshal(line, &l); err != nil {
			return nil, fmt.Errorf("client: bad stream line: %w", err)
		}
		switch l.Type {
		case "hit":
			if l.Hit == nil {
				return nil, fmt.Errorf("client: hit line without hit")
			}
			if fn != nil {
				if err := fn(*l.Hit); err != nil {
					return nil, err
				}
			}
		case "summary":
			s := l.StreamSummary
			summary = &s
		default:
			return nil, fmt.Errorf("client: unknown stream line type %q", l.Type)
		}
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	if summary == nil {
		return nil, fmt.Errorf("client: stream ended without summary")
	}
	return summary, nil
}

// SendEvents feeds a batch of interaction events into a session and
// returns how many the server observed. Event SessionID fields are
// overridden server-side by sessionID.
func (c *Client) SendEvents(ctx context.Context, sessionID string, events []ilog.Event) (int, error) {
	if sessionID == "" || len(events) == 0 {
		return 0, fmt.Errorf("client: SendEvents needs a session id and events")
	}
	body := struct {
		SessionID string       `json:"session_id"`
		Events    []ilog.Event `json:"events"`
	}{sessionID, events}
	var resp struct {
		Observed int `json:"observed"`
	}
	if err := c.do(ctx, http.MethodPost, "/events", nil, body, &resp, retryNever); err != nil {
		return 0, err
	}
	return resp.Observed, nil
}

// Shot fetches one shot's metadata.
func (c *Client) Shot(ctx context.Context, id string) (*Shot, error) {
	var sh Shot
	if err := c.do(ctx, http.MethodGet, "/shots/"+url.PathEscape(id), nil, nil, &sh, retryOK); err != nil {
		return nil, err
	}
	return &sh, nil
}

// Healthz checks liveness and returns session-table stats.
func (c *Client) Healthz(ctx context.Context) (*Health, error) {
	var h Health
	if err := c.do(ctx, http.MethodGet, "/healthz", nil, nil, &h, retryOK); err != nil {
		return nil, err
	}
	return &h, nil
}

// newRequest builds one /api/v1 request.
func (c *Client) newRequest(ctx context.Context, method, path string, query url.Values, body any) (*http.Request, error) {
	u := c.baseURL + "/api/v1" + path
	if len(query) > 0 {
		u += "?" + query.Encode()
	}
	var rd io.Reader
	if body != nil {
		data, err := json.Marshal(body)
		if err != nil {
			return nil, fmt.Errorf("client: encode body: %w", err)
		}
		rd = bytes.NewReader(data)
	}
	req, err := http.NewRequestWithContext(ctx, method, u, rd)
	if err != nil {
		return nil, err
	}
	req.Header.Set("User-Agent", c.userAgent)
	if body != nil {
		req.Header.Set("Content-Type", "application/json")
	}
	// A caller-imposed context deadline becomes the wire deadline
	// budget: the stack decrements it hop by hop and stops working the
	// moment it is spent, instead of discovering a hung-up client after
	// finishing the query.
	if dl, ok := ctx.Deadline(); ok {
		if rem := time.Until(dl); rem > 0 {
			req.Header.Set(overload.DeadlineHeader, overload.FormatDeadline(rem))
		}
	}
	return req, nil
}

// Call-site retry classes. Only side-effect-free reads replay
// safely: a retried Search would advance the session's adaptation
// step again, and a retried DeleteSession whose first attempt
// succeeded would surface a spurious 404.
const (
	retryNever = false
	retryOK    = true
)

// Drain/overload retry budget: a draining or shedding replica rejects
// before touching any session state, so replaying is safe for every
// call — including the retryNever ones — and needs only its own small
// budget, not the caller's WithRetry configuration.
const (
	drainRetries     = 5
	defaultDrainWait = 200 * time.Millisecond
	maxDrainWait     = 5 * time.Second
)

// retryBudget is the client-wide retry token bucket (milli-token
// integers so fractional earn rates accumulate exactly). A nil budget
// is unlimited.
type retryBudget struct {
	mu        sync.Mutex
	milli     int64
	maxMilli  int64
	earnMilli int64
	taken     int64
	denied    int64
}

func newRetryBudget(ratio float64, burst int) *retryBudget {
	if ratio <= 0 || burst <= 0 {
		return nil
	}
	max := int64(burst) * 1000
	return &retryBudget{milli: max, maxMilli: max, earnMilli: int64(ratio * 1000)}
}

// earn credits one primary request.
func (rb *retryBudget) earn() {
	if rb == nil {
		return
	}
	rb.mu.Lock()
	if rb.milli += rb.earnMilli; rb.milli > rb.maxMilli {
		rb.milli = rb.maxMilli
	}
	rb.mu.Unlock()
}

// take claims one retry token, reporting whether the retry may go.
func (rb *retryBudget) take() bool {
	if rb == nil {
		return true
	}
	rb.mu.Lock()
	defer rb.mu.Unlock()
	if rb.milli < 1000 {
		rb.denied++
		return false
	}
	rb.milli -= 1000
	rb.taken++
	return true
}

// RetryBudgetStats is the SDK's retry-bucket telemetry.
type RetryBudgetStats struct {
	// Tokens is the spendable balance; Taken/Denied count granted and
	// refused retries. Unlimited means no bound is configured.
	Tokens    float64
	Taken     int64
	Denied    int64
	Unlimited bool
}

// RetryBudget snapshots the client's retry token bucket.
func (c *Client) RetryBudget() RetryBudgetStats {
	if c.budget == nil {
		return RetryBudgetStats{Unlimited: true}
	}
	c.budget.mu.Lock()
	defer c.budget.mu.Unlock()
	return RetryBudgetStats{
		Tokens: float64(c.budget.milli) / 1000,
		Taken:  c.budget.taken,
		Denied: c.budget.denied,
	}
}

// sleepCtx waits d unless the context ends first.
func sleepCtx(ctx context.Context, d time.Duration) error {
	select {
	case <-ctx.Done():
		return ctx.Err()
	case <-time.After(d):
		return nil
	}
}

// doOpt customises one call: extra request headers and a peek at the
// successful response (Search uses both for the trace echo).
type doOpt func(*doCfg)

type doCfg struct {
	headers    [][2]string
	onResponse func(*http.Response)
}

// withHeader adds one request header to every attempt.
func withHeader(k, v string) doOpt {
	return func(c *doCfg) { c.headers = append(c.headers, [2]string{k, v}) }
}

// onResponse runs fn on the 2xx response before the body decodes
// (response headers are valid inside fn; the body is not).
func onResponse(fn func(*http.Response)) doOpt {
	return func(c *doCfg) { c.onResponse = fn }
}

// do runs one API call, retrying when the call site marked it safe,
// decoding a 2xx body into out and everything else into *APIError.
// 503s from a draining replica and typed 429 admission sheds are
// always retried (honouring the server's Retry-After) up to
// drainRetries times: both are routing/backpressure conditions, not
// errors the virtual user should see. Every retry of any class spends
// one retry-budget token, so total replay traffic stays bounded
// relative to primary traffic even when the server is drowning.
func (c *Client) do(ctx context.Context, method, path string, query url.Values, body, out any, retry bool, opts ...doOpt) error {
	var dc doCfg
	for _, o := range opts {
		o(&dc)
	}
	attempts := 1
	if retry {
		attempts += c.retries
	}
	backoff := c.backoff
	drainBudget := drainRetries
	c.budget.earn()
	var lastErr error
	for attempt := 0; attempt < attempts; {
		if ctx.Err() != nil {
			return ctx.Err()
		}
		// The body is re-marshalled per attempt (only nil-body methods
		// retry, but keep this correct regardless).
		req, err := c.newRequest(ctx, method, path, query, body)
		if err != nil {
			return err
		}
		for _, h := range dc.headers {
			req.Header.Set(h[0], h[1])
		}
		resp, err := c.httpClient.Do(req)
		if err == nil && resp.StatusCode < 500 {
			defer resp.Body.Close()
			if resp.StatusCode < 200 || resp.StatusCode > 299 {
				return decodeAPIError(resp)
			}
			if dc.onResponse != nil {
				dc.onResponse(resp)
			}
			if out != nil {
				if err := json.NewDecoder(resp.Body).Decode(out); err != nil {
					return fmt.Errorf("client: decode response: %w", err)
				}
			}
			return nil
		}
		if err != nil {
			lastErr = err
		} else {
			apiErr := decodeAPIError(resp)
			resp.Body.Close()
			lastErr = apiErr
			if (IsDraining(apiErr) || IsOverloaded(apiErr)) && drainBudget > 0 {
				// Drain/overload retries ride outside the attempt count and
				// wait what the server asked for, not the backoff schedule —
				// but still spend retry-budget tokens like everything else.
				if !c.budget.take() {
					return lastErr
				}
				drainBudget--
				wait := apiErr.RetryAfter
				if wait <= 0 {
					wait = defaultDrainWait
				}
				if wait > maxDrainWait {
					wait = maxDrainWait
				}
				if err := sleepCtx(ctx, wait); err != nil {
					return err
				}
				continue
			}
		}
		attempt++
		if attempt >= attempts {
			break
		}
		if !c.budget.take() {
			break
		}
		if backoff > 0 {
			if err := sleepCtx(ctx, backoff); err != nil {
				return err
			}
			backoff *= 2
		}
	}
	return lastErr
}

// decodeAPIError turns a non-2xx response into *APIError, tolerating
// bodies that are not the JSON envelope.
func decodeAPIError(resp *http.Response) *APIError {
	ae := &APIError{
		StatusCode: resp.StatusCode,
		Code:       "unknown",
		RequestID:  resp.Header.Get("X-Request-Id"),
	}
	if ra := resp.Header.Get("Retry-After"); ra != "" {
		if secs, err := strconv.Atoi(ra); err == nil && secs >= 0 {
			ae.RetryAfter = time.Duration(secs) * time.Second
		}
	}
	data, _ := io.ReadAll(io.LimitReader(resp.Body, 1<<20))
	var env struct {
		Error struct {
			Code    string `json:"code"`
			Message string `json:"message"`
		} `json:"error"`
	}
	if err := json.Unmarshal(data, &env); err == nil && env.Error.Code != "" {
		ae.Code = env.Error.Code
		ae.Message = env.Error.Message
	} else {
		ae.Message = strings.TrimSpace(string(data))
	}
	return ae
}
