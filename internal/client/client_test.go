package client_test

import (
	"context"
	"errors"
	"net/http"
	"net/http/httptest"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/client"
	"repro/internal/core"
	"repro/internal/ilog"
	"repro/internal/synth"
	"repro/internal/webapi"
)

// newStack spins up a real webapi server and a client against it: the
// SDK round-trip is tested against the genuine wire format, not a
// mock.
func newStack(t *testing.T, opts ...client.Option) (*client.Client, *synth.Archive) {
	t.Helper()
	arch, err := synth.Generate(synth.TinyConfig(), 31)
	if err != nil {
		t.Fatal(err)
	}
	sys, err := core.NewSystemFromCollection(arch.Collection, core.Config{UseImplicit: true, UseProfile: true})
	if err != nil {
		t.Fatal(err)
	}
	srv, err := webapi.NewServer(sys)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { srv.Close() })
	ts := httptest.NewServer(srv.Handler())
	t.Cleanup(ts.Close)
	c, err := client.New(ts.URL, opts...)
	if err != nil {
		t.Fatal(err)
	}
	return c, arch
}

func TestNewValidation(t *testing.T) {
	if _, err := client.New("not a url"); err == nil {
		t.Error("bad URL accepted")
	}
	if _, err := client.New(""); err == nil {
		t.Error("empty URL accepted")
	}
}

func TestHealthz(t *testing.T) {
	c, _ := newStack(t)
	h, err := c.Healthz(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if h.Status != "ok" || h.Sessions != 0 {
		t.Errorf("health = %+v", h)
	}
}

// TestFullLoop drives the paper's interaction loop end-to-end through
// the SDK: create a profiled session, search, observe click+play
// evidence, re-search (adapted), inspect state and shot metadata,
// delete.
func TestFullLoop(t *testing.T) {
	c, arch := newStack(t)
	ctx := context.Background()
	topic := arch.Truth.SearchTopics[0]

	id, err := c.CreateSession(ctx, client.CreateSessionRequest{
		UserID:    "alice",
		Interests: map[string]float64{"sports": 0.8},
	})
	if err != nil {
		t.Fatal(err)
	}
	if id == "" {
		t.Fatal("empty session id")
	}

	page, err := c.Search(ctx, client.SearchRequest{SessionID: id, Query: topic.Query, Limit: 5})
	if err != nil {
		t.Fatal(err)
	}
	if len(page.Hits) == 0 || page.Step != 1 || page.Total < len(page.Hits) {
		t.Fatalf("page = %+v", page)
	}
	if page.Hits[0].Category == "" || page.Hits[0].Seconds <= 0 {
		t.Errorf("hit missing metadata: %+v", page.Hits[0])
	}

	top := page.Hits[0].ShotID
	n, err := c.SendEvents(ctx, id, []ilog.Event{
		{Action: ilog.ActionClickKeyframe, ShotID: top, Rank: 0},
		{Action: ilog.ActionPlay, ShotID: top, Rank: 0, Seconds: 12},
	})
	if err != nil {
		t.Fatal(err)
	}
	if n != 2 {
		t.Errorf("observed = %d", n)
	}

	adapted, err := c.Search(ctx, client.SearchRequest{SessionID: id, Query: topic.Query, Limit: 5})
	if err != nil {
		t.Fatal(err)
	}
	if adapted.Step != 2 {
		t.Errorf("adapted step = %d", adapted.Step)
	}

	st, err := c.Session(ctx, id)
	if err != nil {
		t.Fatal(err)
	}
	if st.Evidence != 2 || st.LastQuery != topic.Query || st.Interests["sports"] != 0.8 {
		t.Errorf("state = %+v", st)
	}

	sh, err := c.Shot(ctx, top)
	if err != nil {
		t.Fatal(err)
	}
	if sh.ShotID != top || sh.Transcript == "" {
		t.Errorf("shot = %+v", sh)
	}

	if err := c.DeleteSession(ctx, id); err != nil {
		t.Fatal(err)
	}
	if _, err := c.Session(ctx, id); !client.IsNotFound(err) {
		t.Errorf("after delete: %v", err)
	}
}

func TestSearchPagination(t *testing.T) {
	c, arch := newStack(t)
	ctx := context.Background()
	topic := arch.Truth.SearchTopics[0]
	id, err := c.CreateSession(ctx, client.CreateSessionRequest{})
	if err != nil {
		t.Fatal(err)
	}
	full, err := c.Search(ctx, client.SearchRequest{SessionID: id, Query: topic.Query, Limit: 1000})
	if err != nil {
		t.Fatal(err)
	}
	if full.Total < 3 {
		t.Skipf("topic too small (total=%d)", full.Total)
	}
	page, err := c.Search(ctx, client.SearchRequest{SessionID: id, Query: topic.Query, Offset: 1, Limit: 2})
	if err != nil {
		t.Fatal(err)
	}
	if len(page.Hits) != 2 || page.Hits[0].Rank != 1 {
		t.Fatalf("page = %+v", page)
	}
	if page.Hits[0].ShotID != full.Hits[1].ShotID {
		t.Errorf("offset window mismatch: %s vs %s", page.Hits[0].ShotID, full.Hits[1].ShotID)
	}
}

func TestSearchFacet(t *testing.T) {
	c, arch := newStack(t)
	ctx := context.Background()
	topic := arch.Truth.SearchTopics[0]
	id, err := c.CreateSession(ctx, client.CreateSessionRequest{})
	if err != nil {
		t.Fatal(err)
	}
	cat := topic.Category.String()
	page, err := c.Search(ctx, client.SearchRequest{
		SessionID: id, Query: topic.Query, Categories: []string{cat},
	})
	if err != nil {
		t.Fatal(err)
	}
	for _, h := range page.Hits {
		if h.Category != cat {
			t.Fatalf("facet leaked category %q", h.Category)
		}
	}
	if _, err := c.Search(ctx, client.SearchRequest{
		SessionID: id, Query: "x", Categories: []string{"astrology"},
	}); err == nil {
		t.Error("bad category accepted")
	}
}

func TestSearchStream(t *testing.T) {
	c, arch := newStack(t)
	ctx := context.Background()
	topic := arch.Truth.SearchTopics[0]
	id, err := c.CreateSession(ctx, client.CreateSessionRequest{})
	if err != nil {
		t.Fatal(err)
	}
	var hits []client.Hit
	sum, err := c.SearchStream(ctx, client.SearchRequest{SessionID: id, Query: topic.Query, Limit: 5},
		func(h client.Hit) error {
			hits = append(hits, h)
			return nil
		})
	if err != nil {
		t.Fatal(err)
	}
	if len(hits) == 0 || sum.Total < len(hits) || sum.Step != 1 {
		t.Fatalf("stream: %d hits, summary %+v", len(hits), sum)
	}
	for i, h := range hits {
		if h.Rank != i {
			t.Errorf("hit %d rank = %d", i, h.Rank)
		}
	}
	// Callback errors abort the stream and surface to the caller.
	sentinel := errors.New("stop")
	if _, err := c.SearchStream(ctx, client.SearchRequest{SessionID: id, Query: topic.Query},
		func(client.Hit) error { return sentinel }); !errors.Is(err, sentinel) {
		t.Errorf("callback error = %v, want sentinel", err)
	}
	// Unknown session surfaces as APIError, not a broken stream.
	if _, err := c.SearchStream(ctx, client.SearchRequest{SessionID: "ghost", Query: "x"}, nil); !client.IsNotFound(err) {
		t.Errorf("ghost stream err = %v", err)
	}
}

func TestAPIErrorDetails(t *testing.T) {
	c, _ := newStack(t)
	ctx := context.Background()
	_, err := c.Session(ctx, "ghost")
	var ae *client.APIError
	if !errors.As(err, &ae) {
		t.Fatalf("err = %T %v", err, err)
	}
	if ae.StatusCode != http.StatusNotFound || ae.Code != "not_found" || ae.Message == "" || ae.RequestID == "" {
		t.Errorf("APIError = %+v", ae)
	}
	if !client.IsNotFound(err) {
		t.Error("IsNotFound = false")
	}
	// Client-side validation errors are not APIErrors.
	if _, err := c.Search(ctx, client.SearchRequest{}); errors.As(err, &ae) {
		t.Errorf("local validation produced APIError: %v", err)
	}
	if _, err := c.SendEvents(ctx, "", nil); err == nil {
		t.Error("empty SendEvents accepted")
	}
}

func TestEventValidationSurfaces(t *testing.T) {
	c, _ := newStack(t)
	ctx := context.Background()
	id, err := c.CreateSession(ctx, client.CreateSessionRequest{})
	if err != nil {
		t.Fatal(err)
	}
	_, err = c.SendEvents(ctx, id, []ilog.Event{{Action: ilog.ActionRate, ShotID: "x", Value: 7}})
	var ae *client.APIError
	if !errors.As(err, &ae) || ae.Code != "invalid_request" {
		t.Errorf("bad event err = %v", err)
	}
}

// TestRetry5xx: GETs retry through transient 5xx responses; the
// flaky window heals and the call succeeds.
func TestRetry5xx(t *testing.T) {
	var calls atomic.Int32
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if calls.Add(1) <= 2 {
			w.Header().Set("Content-Type", "application/json")
			w.WriteHeader(http.StatusBadGateway)
			w.Write([]byte(`{"error":{"code":"internal","message":"flaky"}}`))
			return
		}
		w.Header().Set("Content-Type", "application/json")
		w.Write([]byte(`{"status":"ok","sessions":0}`))
	}))
	defer ts.Close()
	c, err := client.New(ts.URL, client.WithRetry(3, time.Millisecond))
	if err != nil {
		t.Fatal(err)
	}
	h, err := c.Healthz(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if h.Status != "ok" {
		t.Errorf("health = %+v", h)
	}
	if got := calls.Load(); got != 3 {
		t.Errorf("calls = %d, want 3", got)
	}
}

// TestRetryExhaustion: the last 5xx error surfaces as APIError after
// retries run out.
func TestRetryExhaustion(t *testing.T) {
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.WriteHeader(http.StatusInternalServerError)
		w.Write([]byte(`{"error":{"code":"internal","message":"down"}}`))
	}))
	defer ts.Close()
	c, err := client.New(ts.URL, client.WithRetry(2, time.Millisecond))
	if err != nil {
		t.Fatal(err)
	}
	_, err = c.Healthz(context.Background())
	var ae *client.APIError
	if !errors.As(err, &ae) || ae.StatusCode != http.StatusInternalServerError {
		t.Fatalf("err = %v", err)
	}
}

// TestNoRetryOnPost: non-idempotent requests are never re-sent.
func TestNoRetryOnPost(t *testing.T) {
	var calls atomic.Int32
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		calls.Add(1)
		w.WriteHeader(http.StatusInternalServerError)
		w.Write([]byte(`{"error":{"code":"internal","message":"down"}}`))
	}))
	defer ts.Close()
	c, err := client.New(ts.URL, client.WithRetry(5, time.Millisecond))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := c.CreateSession(context.Background(), client.CreateSessionRequest{}); err == nil {
		t.Fatal("expected error")
	}
	if got := calls.Load(); got != 1 {
		t.Errorf("POST attempted %d times, want 1", got)
	}
}

// TestRetryHonoursContext: cancellation stops the retry loop.
func TestRetryHonoursContext(t *testing.T) {
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.WriteHeader(http.StatusInternalServerError)
	}))
	defer ts.Close()
	c, err := client.New(ts.URL, client.WithRetry(100, 50*time.Millisecond))
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 60*time.Millisecond)
	defer cancel()
	start := time.Now()
	_, err = c.Healthz(ctx)
	if err == nil {
		t.Fatal("expected error")
	}
	if time.Since(start) > 2*time.Second {
		t.Errorf("retry loop ignored context (%v)", time.Since(start))
	}
}

// TestConcurrentClients hammers one server through many SDK clients;
// run with -race this doubles as the SDK-side concurrency check.
func TestConcurrentClients(t *testing.T) {
	c, arch := newStack(t)
	topic := arch.Truth.SearchTopics[0]
	const workers = 8
	done := make(chan error, workers)
	for i := 0; i < workers; i++ {
		go func() {
			done <- func() error {
				ctx := context.Background()
				id, err := c.CreateSession(ctx, client.CreateSessionRequest{})
				if err != nil {
					return err
				}
				for j := 0; j < 3; j++ {
					page, err := c.Search(ctx, client.SearchRequest{SessionID: id, Query: topic.Query})
					if err != nil {
						return err
					}
					if len(page.Hits) > 0 {
						if _, err := c.SendEvents(ctx, id, []ilog.Event{
							{Action: ilog.ActionClickKeyframe, ShotID: page.Hits[0].ShotID, Rank: 0},
						}); err != nil {
							return err
						}
					}
				}
				return c.DeleteSession(ctx, id)
			}()
		}()
	}
	for i := 0; i < workers; i++ {
		if err := <-done; err != nil {
			t.Fatal(err)
		}
	}
}

func TestListSessions(t *testing.T) {
	c, _ := newStack(t)
	ctx := context.Background()
	var ids []string
	for i := 0; i < 4; i++ {
		id, err := c.CreateSession(ctx, client.CreateSessionRequest{})
		if err != nil {
			t.Fatal(err)
		}
		ids = append(ids, id)
	}
	list, err := c.ListSessions(ctx, 0, 0)
	if err != nil {
		t.Fatal(err)
	}
	if list.Total != 4 || len(list.Sessions) != 4 {
		t.Fatalf("list = total %d with %d entries, want 4/4", list.Total, len(list.Sessions))
	}
	// Windowed page.
	page, err := c.ListSessions(ctx, 2, 2)
	if err != nil {
		t.Fatal(err)
	}
	if page.Total != 4 || len(page.Sessions) != 2 || page.Offset != 2 {
		t.Fatalf("page = %+v", page)
	}
	if err := c.DeleteSession(ctx, ids[0]); err != nil {
		t.Fatal(err)
	}
	list, err = c.ListSessions(ctx, 0, 0)
	if err != nil {
		t.Fatal(err)
	}
	if list.Total != 3 {
		t.Fatalf("total after delete = %d, want 3", list.Total)
	}
}

func TestMetrics(t *testing.T) {
	c, arch := newStack(t)
	ctx := context.Background()
	id, err := c.CreateSession(ctx, client.CreateSessionRequest{})
	if err != nil {
		t.Fatal(err)
	}
	q := arch.Truth.SearchTopics[0].Query
	for i := 0; i < 2; i++ {
		if _, err := c.Search(ctx, client.SearchRequest{SessionID: id, Query: q}); err != nil {
			t.Fatal(err)
		}
	}
	m, err := c.Metrics(ctx)
	if err != nil {
		t.Fatal(err)
	}
	search := m.Routes["GET /api/v1/search"]
	if search.Count != 2 || search.Status["200"] != 2 {
		t.Errorf("search route = %+v, want 2x 200", search)
	}
	if search.Latency.Count != 2 || search.Latency.P50MS < 0 {
		t.Errorf("search latency = %+v", search.Latency)
	}
	if m.Sessions.Created != 1 || m.Sessions.Live != 1 {
		t.Errorf("sessions = %+v", m.Sessions)
	}
	if m.Totals.Requests < 3 {
		t.Errorf("totals = %+v, want >= 3 requests", m.Totals)
	}
}
