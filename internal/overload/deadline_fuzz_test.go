package overload

import (
	"errors"
	"testing"
	"time"
)

// FuzzParseDeadline drives the budget-header parser with arbitrary
// strings, mirroring FuzzParseTopology's contract: never panic,
// classify every rejection as exactly one typed sentinel, return a
// zero budget on rejection, and on acceptance return a budget inside
// (0, MaxBudget] that round-trips through FormatDeadline.
func FuzzParseDeadline(f *testing.F) {
	seeds := []string{
		"", "0", "1", "-1", "250", "600000", "600001",
		"1770000000000", "2.5", "250ms", " 250", "250 ", "+5",
		"0x10", "soon", "99999999999999999999999", "\x00", "１０",
	}
	for _, s := range seeds {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, v string) {
		d, err := ParseDeadline(v)
		if err != nil {
			malformed := errors.Is(err, ErrDeadlineMalformed)
			expired := errors.Is(err, ErrDeadlineExpired)
			if malformed == expired {
				t.Fatalf("rejection not typed exactly once (malformed=%v expired=%v): %v", malformed, expired, err)
			}
			if d != 0 {
				t.Fatalf("rejected parse returned budget %v — a caller could partially honour it", d)
			}
			return
		}
		if v == "" {
			if d != 0 {
				t.Fatalf("absent header parsed to %v", d)
			}
			return
		}
		if d <= 0 || d > MaxBudget {
			t.Fatalf("accepted budget %v outside (0, %v]", d, MaxBudget)
		}
		if d%time.Millisecond != 0 {
			t.Fatalf("accepted budget %v not whole milliseconds", d)
		}
		back, err := ParseDeadline(FormatDeadline(d))
		if err != nil || back != d {
			t.Fatalf("accepted budget %v does not round-trip: %v, %v", d, back, err)
		}
	})
}
