package overload

import (
	"context"
	"errors"
	"sync"
	"testing"
	"time"
)

func TestParseDeadline(t *testing.T) {
	cases := []struct {
		name string
		in   string
		want time.Duration
		err  error
	}{
		{"absent", "", 0, nil},
		{"small", "1", time.Millisecond, nil},
		{"typical", "2500", 2500 * time.Millisecond, nil},
		{"max", "600000", MaxBudget, nil},
		{"zero", "0", 0, ErrDeadlineExpired},
		{"negative", "-40", 0, ErrDeadlineExpired},
		{"over-max", "600001", 0, ErrDeadlineMalformed},
		{"epoch-millis-skew", "1770000000000", 0, ErrDeadlineMalformed},
		{"float", "2.5", 0, ErrDeadlineMalformed},
		{"units", "250ms", 0, ErrDeadlineMalformed},
		{"hex", "0x10", 0, ErrDeadlineMalformed},
		{"trailing", "250 ", 0, ErrDeadlineMalformed},
		{"leading", " 250", 0, ErrDeadlineMalformed},
		{"plus-sign", "+250", 0, ErrDeadlineMalformed},
		{"garbage", "soon", 0, ErrDeadlineMalformed},
		{"overflow", "99999999999999999999999", 0, ErrDeadlineMalformed},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			got, err := ParseDeadline(tc.in)
			if !errors.Is(err, tc.err) {
				t.Fatalf("ParseDeadline(%q) err = %v, want %v", tc.in, err, tc.err)
			}
			if err == nil && got != tc.want {
				t.Fatalf("ParseDeadline(%q) = %v, want %v", tc.in, got, tc.want)
			}
			if err != nil && got != 0 {
				t.Fatalf("rejected parse returned nonzero budget %v", got)
			}
		})
	}
}

func TestFormatParseRoundTrip(t *testing.T) {
	for _, d := range []time.Duration{time.Millisecond, 250 * time.Millisecond, 5 * time.Second, MaxBudget} {
		got, err := ParseDeadline(FormatDeadline(d))
		if err != nil {
			t.Fatalf("round trip %v: %v", d, err)
		}
		if got != d {
			t.Fatalf("round trip %v = %v", d, got)
		}
	}
	if FormatDeadline(-time.Second) != "0" {
		t.Fatalf("negative budget must format as 0, got %q", FormatDeadline(-time.Second))
	}
	// Sub-millisecond remainders floor to 0: the hop should have
	// answered deadline_exceeded itself instead of forwarding.
	if FormatDeadline(400*time.Microsecond) != "0" {
		t.Fatalf("sub-ms budget must floor to 0")
	}
}

// manualClock is the minimal deterministic clock for budget tests.
type manualClock struct {
	mu     sync.Mutex
	now    time.Time
	timers []struct {
		when time.Time
		ch   chan time.Time
	}
}

func newManualClock() *manualClock { return &manualClock{now: time.Unix(1_000_000, 0)} }

func (c *manualClock) Now() time.Time {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.now
}

func (c *manualClock) After(d time.Duration) <-chan time.Time {
	c.mu.Lock()
	defer c.mu.Unlock()
	ch := make(chan time.Time, 1)
	c.timers = append(c.timers, struct {
		when time.Time
		ch   chan time.Time
	}{c.now.Add(d), ch})
	return ch
}

func (c *manualClock) Advance(d time.Duration) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.now = c.now.Add(d)
	kept := c.timers[:0]
	for _, t := range c.timers {
		if !t.when.After(c.now) {
			t.ch <- c.now
		} else {
			kept = append(kept, t)
		}
	}
	c.timers = kept
}

func TestBudgetContext(t *testing.T) {
	clk := newManualClock()
	ctx, cancel := WithBudget(context.Background(), 100*time.Millisecond, clk)
	defer cancel()
	b := FromContext(ctx)
	if b == nil {
		t.Fatal("no budget in context")
	}
	if b.Expired() {
		t.Fatal("fresh budget already expired")
	}
	if rem, ok := RemainingFromContext(ctx); !ok || rem != 100*time.Millisecond {
		t.Fatalf("remaining = %v, %v", rem, ok)
	}
	clk.Advance(99 * time.Millisecond)
	if b.Expired() {
		t.Fatal("expired 1ms early")
	}
	if ctx.Err() != nil {
		t.Fatal("context cancelled before the budget ran out")
	}
	clk.Advance(time.Millisecond)
	if !b.Expired() {
		t.Fatal("not expired at the boundary")
	}
	// Cancellation is driven by the injected clock — no real sleeps;
	// the fired timer reaches the cancel goroutine asynchronously.
	select {
	case <-ctx.Done():
	case <-time.After(5 * time.Second):
		t.Fatal("context not cancelled after the budget expired")
	}
}

func TestBudgetNilSafe(t *testing.T) {
	var b *Budget
	if b.Expired() {
		t.Fatal("nil budget expired")
	}
	if b.Remaining() != 0 {
		t.Fatal("nil budget has remaining time")
	}
	if got := FromContext(context.Background()); got != nil {
		t.Fatalf("budget in empty context: %v", got)
	}
	if _, ok := RemainingFromContext(context.Background()); ok {
		t.Fatal("remaining reported without a budget or deadline")
	}
}

func TestRemainingFromContextDeadlineFallback(t *testing.T) {
	ctx, cancel := context.WithTimeout(context.Background(), time.Minute)
	defer cancel()
	rem, ok := RemainingFromContext(ctx)
	if !ok || rem <= 0 || rem > time.Minute {
		t.Fatalf("deadline fallback remaining = %v, %v", rem, ok)
	}
}

func TestWithBudgetRealClock(t *testing.T) {
	ctx, cancel := WithBudget(context.Background(), time.Minute, nil)
	defer cancel()
	if FromContext(ctx) == nil {
		t.Fatal("no budget")
	}
	dl, ok := ctx.Deadline()
	if !ok {
		t.Fatal("real-clock budget must set a context deadline for net/http cancellation")
	}
	if until := time.Until(dl); until <= 0 || until > time.Minute {
		t.Fatalf("deadline %v out of range", until)
	}
}
