// Package overload carries the cross-tier overload-protection
// vocabulary: the X-IVR-Deadline budget header that propagates a
// request's remaining latency budget across router → ivrserve →
// ivrsegment, and the context plumbing that lets scatter RPCs, hedges
// and the scoring kernel's per-block loop observe that budget without
// real timers — the clock is injectable, so chaostest can expire a
// budget by advancing a fake clock instead of sleeping.
//
// The header value is *relative*: integer milliseconds of budget left,
// re-minted (decremented) at every hop. Relative budgets are immune to
// clock skew between tiers — an absolute timestamp would shed or
// extend work whenever two machines disagree about the time, which is
// exactly the failure mode a deadline is meant to prevent. A value
// that looks like an absolute epoch timestamp is therefore rejected as
// malformed (it exceeds MaxBudget).
package overload

import (
	"context"
	"errors"
	"strconv"
	"time"
)

// DeadlineHeader carries the remaining request budget as integer
// milliseconds, decremented at every hop.
const DeadlineHeader = "X-IVR-Deadline"

// MaxBudget bounds a parseable budget. Anything larger is a bug — an
// absolute timestamp leaking into the relative header, or a caller
// that forgot the unit — and is rejected as malformed rather than
// silently honoured for sixteen minutes.
const MaxBudget = 10 * time.Minute

// MinForward is the smallest budget worth sending downstream: a hop
// with less than this left answers deadline_exceeded itself instead
// of forwarding a request that cannot round-trip.
const MinForward = time.Millisecond

// Typed rejection sentinels for ParseDeadline, and the runtime error
// a scoring path returns when the budget runs out mid-flight. All
// three map to typed envelopes — never a generic 500.
var (
	// ErrDeadlineMalformed rejects a header value that is not a
	// positive integer millisecond count within MaxBudget.
	ErrDeadlineMalformed = errors.New("overload: malformed deadline header")
	// ErrDeadlineExpired rejects a zero or negative budget: the
	// sender's deadline passed before the request arrived.
	ErrDeadlineExpired = errors.New("overload: deadline already expired")
	// ErrDeadlineExceeded reports a budget that ran out while the
	// request was being served.
	ErrDeadlineExceeded = errors.New("overload: deadline exceeded")
)

// ParseDeadline parses an X-IVR-Deadline value. An absent (empty)
// header means no deadline and returns (0, nil). Rejections are typed:
// non-integer syntax, leading/trailing junk, or a value beyond
// MaxBudget return ErrDeadlineMalformed; zero or negative budgets
// return ErrDeadlineExpired.
func ParseDeadline(v string) (time.Duration, error) {
	if v == "" {
		return 0, nil
	}
	// Canonical integers only: ParseInt tolerates a leading '+', which
	// no conforming minter emits.
	if v[0] == '+' {
		return 0, ErrDeadlineMalformed
	}
	ms, err := strconv.ParseInt(v, 10, 64)
	if err != nil {
		return 0, ErrDeadlineMalformed
	}
	if ms <= 0 {
		return 0, ErrDeadlineExpired
	}
	// Bound before converting: a huge count would overflow the
	// nanosecond multiply and wrap negative.
	if ms > MaxBudget.Milliseconds() {
		return 0, ErrDeadlineMalformed
	}
	return time.Duration(ms) * time.Millisecond, nil
}

// FormatDeadline renders a remaining budget as a header value
// (integer milliseconds, floored). Callers must check the budget
// against MinForward first; a non-positive duration renders as "0",
// which every parser on the other side rejects as expired.
func FormatDeadline(d time.Duration) string {
	ms := d.Milliseconds()
	if ms < 0 {
		ms = 0
	}
	return strconv.FormatInt(ms, 10)
}

// Clock abstracts time for the budget so tests advance it manually.
// distrib.Clock satisfies it structurally.
type Clock interface {
	Now() time.Time
	After(d time.Duration) <-chan time.Time
}

// Budget is a request's live latency budget, resolved once from the
// context and then polled cheaply (two loads and a clock read). All
// methods are nil-safe: a nil *Budget means "no deadline" and every
// check short-circuits false, which is what keeps the idle hot path
// free.
type Budget struct {
	expires time.Time
	clock   Clock
}

type budgetKey struct{}

// WithBudget derives a context carrying a latency budget of d. With a
// nil clock the real clock is used and the context gets a real
// deadline (so net/http cancels in-flight IO); with an injected clock
// cancellation is driven by clock.After, so tests fire it by advancing
// a fake clock — zero real sleeps.
func WithBudget(ctx context.Context, d time.Duration, clock Clock) (context.Context, context.CancelFunc) {
	if clock == nil {
		b := &Budget{expires: time.Now().Add(d), clock: realClock{}}
		ctx = context.WithValue(ctx, budgetKey{}, b)
		return context.WithDeadline(ctx, b.expires)
	}
	b := &Budget{expires: clock.Now().Add(d), clock: clock}
	ctx = context.WithValue(ctx, budgetKey{}, b)
	ctx, cancel := context.WithCancel(ctx)
	// Arm the timer before returning: a test that advances the clock
	// immediately after WithBudget must still fire it.
	expired := clock.After(d)
	go func() {
		select {
		case <-expired:
			cancel()
		case <-ctx.Done():
		}
	}()
	return ctx, cancel
}

// FromContext resolves the budget once; nil when the request carries
// none. Hot loops resolve once and poll the returned *Budget.
func FromContext(ctx context.Context) *Budget {
	b, _ := ctx.Value(budgetKey{}).(*Budget)
	return b
}

// Expired reports whether the budget has run out. Nil-safe and free
// of allocation; the only cost is one clock read when a budget exists.
func (b *Budget) Expired() bool {
	if b == nil {
		return false
	}
	return !b.clock.Now().Before(b.expires)
}

// Remaining reports the budget left (negative once expired). A nil
// budget reports zero.
func (b *Budget) Remaining() time.Duration {
	if b == nil {
		return 0
	}
	return b.expires.Sub(b.clock.Now())
}

// RemainingFromContext reports the tightest known budget: the
// explicit overload budget when the context carries one, else the
// plain context deadline (how SDK per-request timeouts enter the
// propagation chain). ok is false when neither exists.
func RemainingFromContext(ctx context.Context) (time.Duration, bool) {
	if b := FromContext(ctx); b != nil {
		return b.Remaining(), true
	}
	if dl, ok := ctx.Deadline(); ok {
		return time.Until(dl), true
	}
	return 0, false
}

type realClock struct{}

func (realClock) Now() time.Time                         { return time.Now() }
func (realClock) After(d time.Duration) <-chan time.Time { return time.After(d) }
