// Quickstart: generate a synthetic news archive, search it, give
// implicit feedback, and watch the ranking adapt — the library's
// core loop in ~60 lines.
package main

import (
	"fmt"
	"log"

	"repro"
)

func main() {
	// 1. A synthetic news archive stands in for the BBC recordings the
	//    paper proposes to index: six daily bulletins with ground-truth
	//    topics and relevance judgements.
	arch, err := repro.GenerateArchive(repro.TinyArchive(), 1)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("archive: %d bulletins, %d stories, %d shots\n",
		arch.Collection.NumVideos(), arch.Collection.NumStories(), arch.Collection.NumShots())

	// 2. Wire the adaptive retrieval model (implicit feedback on).
	sys, err := repro.NewAdaptiveSystem(arch, repro.ImplicitOnly())
	if err != nil {
		log.Fatal(err)
	}

	// 3. Take a generated evaluation topic as the information need so
	//    we can score against ground truth; pick one where the initial
	//    ranking finds something but leaves room to adapt.
	var (
		topic  *repro.SearchTopic
		judg   repro.Judgments
		sess   *repro.Session
		res    repro.Results
		before repro.Metrics
	)
	for _, st := range arch.Truth.SearchTopics {
		j := repro.TopicJudgments(arch, st.ID)
		s := sys.NewSession("quickstart", nil)
		r, err := s.Query(st.Query)
		if err != nil {
			log.Fatal(err)
		}
		m := repro.Evaluate(r.IDs(), j)
		if m.P10 >= 0.2 && m.AP < 0.9 {
			topic, judg, sess, res, before = st, j, s, r, m
			break
		}
	}
	if topic == nil {
		log.Fatal("no suitable demo topic in this archive; try another seed")
	}
	fmt.Printf("\ntopic: %q (%s), %d relevant shots\n", topic.Query, topic.Category, judg.NumRelevant(1))
	fmt.Printf("\ninitial ranking: AP=%.3f P@10=%.2f\n", before.AP, before.P10)
	printTop(arch, res, judg, 5)

	// 5. The user clicks and watches the relevant results on the first
	//    page — implicit relevance feedback, no explicit judging.
	fed := 0
	for rank, h := range res.Hits {
		if judg[h.ID] < 1 || fed >= 3 {
			continue
		}
		fed++
		if err := sess.Observe(repro.ClickEvent("quickstart", h.ID, rank)); err != nil {
			log.Fatal(err)
		}
		if err := sess.Observe(repro.PlayEvent("quickstart", h.ID, rank, 18)); err != nil {
			log.Fatal(err)
		}
	}
	fmt.Printf("\nfed %d clicks + plays back into the session\n", fed)

	// 6. Search again: the query has been expanded from the watched
	//    shots' vocabulary and the ranking adapts.
	adapted, err := sess.Query(topic.Query)
	if err != nil {
		log.Fatal(err)
	}
	after := repro.Evaluate(adapted.IDs(), judg)
	fmt.Printf("\nadapted ranking: AP=%.3f P@10=%.2f  (dAP %+.3f)\n", after.AP, after.P10, after.AP-before.AP)
	printTop(arch, adapted, judg, 5)
}

func printTop(arch *repro.Archive, res repro.Results, judg repro.Judgments, k int) {
	for i, h := range res.Hits {
		if i >= k {
			break
		}
		mark := " "
		if judg[h.ID] >= 1 {
			mark = "*"
		}
		fmt.Printf("  %d.%s %s (%.3f)\n", i+1, mark, h.ID, h.Score)
	}
}
