// Newsdesk: the paper's motivating scenario — a personalised news
// service that learns what a viewer cares about. A static profile
// seeds the personalisation ("register your interests"); implicit
// viewing behaviour then drifts it day by day, and the daily briefing
// (profile-ranked fresh stories) sharpens accordingly.
package main

import (
	"fmt"
	"log"
	"sort"

	"repro"
	"repro/internal/collection"
)

func main() {
	arch, err := repro.GenerateArchive(repro.TinyArchive(), 7)
	if err != nil {
		log.Fatal(err)
	}
	// Combined adaptation with profile drift: watching sports slowly
	// raises the sports interest.
	cfg := repro.Combined()
	cfg.ProfileLearnRate = 0.15
	sys, err := repro.NewAdaptiveSystem(arch, cfg)
	if err != nil {
		log.Fatal(err)
	}

	// The viewer registered a mild interest in sports, nothing else.
	viewer := repro.NewProfile("alice")
	viewer.SetInterest(collection.CatSports, 0.7)
	sess := sys.NewSession("newsdesk-alice", viewer)

	fmt.Println("== personalised morning briefings ==")
	fmt.Printf("day 0 declared profile: sports=%.2f (everything else neutral)\n\n",
		viewer.Interest(collection.CatSports))

	// One briefing per broadcast day; Alice watches sports stories all
	// the way through and skips politics quickly.
	for day, vid := range arch.Collection.VideoIDs() {
		video := arch.Collection.Video(vid)
		briefing := rankBriefing(arch.Collection, viewer, video.Stories)
		fmt.Printf("day %d briefing (top 3 of %d stories):\n", day+1, len(briefing))
		for i, sid := range briefing {
			if i >= 3 {
				break
			}
			story := arch.Collection.Story(sid)
			fmt.Printf("  %d. [%-13s] %s\n", i+1, story.Category, story.Title)
		}
		// Viewing behaviour: full plays on sports, bail-outs elsewhere.
		for i, sid := range briefing {
			if i >= 3 {
				break
			}
			story := arch.Collection.Story(sid)
			shot := arch.Collection.Shot(story.Shots[0])
			secs := 2.0 // glance and skip
			if story.Category == collection.CatSports {
				secs = shot.Duration.Seconds() // watches it all
			}
			if err := sess.Observe(repro.PlayEvent("newsdesk-alice", string(shot.ID), i, secs)); err != nil {
				log.Fatal(err)
			}
		}
	}
	fmt.Printf("\nafter a week of viewing, drifted profile:\n")
	cats := viewer.Categories()
	sort.Slice(cats, func(i, j int) bool { return viewer.Interest(cats[i]) > viewer.Interest(cats[j]) })
	for _, c := range cats {
		fmt.Printf("  %-13s %.2f\n", c, viewer.Interest(c))
	}

	// The drifted profile now also personalises ad-hoc search: a
	// sports-flavoured query ranks sports stories higher for Alice
	// than for an anonymous user.
	topic := sportsTopic(arch)
	if topic == nil {
		fmt.Println("\n(no sports topic in this archive)")
		return
	}
	res, err := sess.Query(topic.Query)
	if err != nil {
		log.Fatal(err)
	}
	anon := sys.NewSession("newsdesk-anon", nil)
	resAnon, err := anon.Query(topic.Query)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nsearch %q: sports shots in top-10 — alice %d vs anonymous %d\n",
		topic.Query,
		sportsInTop(arch.Collection, res, 10),
		sportsInTop(arch.Collection, resAnon, 10))
}

// rankBriefing orders a bulletin's stories by the viewer's interest in
// their categories (ties keep bulletin order).
func rankBriefing(coll *repro.Collection, p *repro.Profile, stories []collection.StoryID) []collection.StoryID {
	out := append([]collection.StoryID(nil), stories...)
	sort.SliceStable(out, func(i, j int) bool {
		return p.Interest(coll.Story(out[i]).Category) > p.Interest(coll.Story(out[j]).Category)
	})
	return out
}

func sportsTopic(arch *repro.Archive) *repro.SearchTopic {
	for _, st := range arch.Truth.SearchTopics {
		if st.Category == collection.CatSports {
			return st
		}
	}
	if len(arch.Truth.SearchTopics) > 0 {
		return arch.Truth.SearchTopics[0]
	}
	return nil
}

func sportsInTop(coll *repro.Collection, res repro.Results, k int) int {
	n := 0
	for i, h := range res.Hits {
		if i >= k {
			break
		}
		story := coll.StoryOfShot(collection.ShotID(h.ID))
		if story != nil && story.Category == collection.CatSports {
			n++
		}
	}
	return n
}
