// Evaluation: the complete research workflow the paper proposes, as a
// program — simulate two systems over the same user population, export
// TREC-format runs, score them, and significance-test the difference.
// This is the methodology loop (simulate → log → evaluate) that
// replaces a laboratory user study.
package main

import (
	"fmt"
	"log"

	"repro"
	"repro/internal/eval"
)

func main() {
	arch, err := repro.GenerateArchive(repro.TinyArchive(), 2008)
	if err != nil {
		log.Fatal(err)
	}
	topics := arch.Truth.SearchTopics
	fmt.Printf("collection: %d shots, %d evaluation topics\n\n",
		arch.Collection.NumShots(), len(topics))

	// Two systems under test, same participants, same tasks.
	systems := []struct {
		name string
		cfg  repro.SystemConfig
	}{
		{"baseline", repro.Baseline()},
		{"combined", repro.Combined()},
	}
	runs := make(map[string]*eval.Run)
	var qrels eval.QrelSet
	for _, s := range systems {
		sys, err := repro.NewAdaptiveSystem(arch, s.cfg)
		if err != nil {
			log.Fatal(err)
		}
		study, err := repro.RunStudy(arch, sys, repro.Desktop(), 3, topics, 3, 77)
		if err != nil {
			log.Fatal(err)
		}
		runs[s.name] = study.ToRun(s.name)
		if qrels == nil {
			qrels = study.ToQrels(arch.Truth.Qrels)
		}
		fmt.Printf("%-9s MAP(first)=%.3f  MAP(final)=%.3f  (%d sessions, %d logged events)\n",
			s.name, study.MeanFirst.AP, study.MeanFinal.AP,
			len(study.Sessions), len(study.Events))
	}

	// Score both runs against the shared qrels.
	perBase, meanBase, _ := eval.EvaluateRun(runs["baseline"], qrels)
	perComb, meanComb, _ := eval.EvaluateRun(runs["combined"], qrels)
	fmt.Printf("\nrun evaluation (TREC pipeline):\n")
	fmt.Printf("  baseline: MAP %.4f  P@10 %.4f  nDCG@10 %.4f\n", meanBase.AP, meanBase.P10, meanBase.NDCG10)
	fmt.Printf("  combined: MAP %.4f  P@10 %.4f  nDCG@10 %.4f\n", meanComb.AP, meanComb.P10, meanComb.NDCG10)
	fmt.Printf("  relative MAP improvement: %+.1f%%\n",
		eval.RelImprovement(meanBase.AP, meanComb.AP))

	// Paired significance over the common session-queries.
	var a, b []float64
	for _, qid := range runs["baseline"].QueryIDs() {
		m1, ok1 := perBase[qid]
		m2, ok2 := perComb[qid]
		if ok1 && ok2 {
			a = append(a, m1.AP)
			b = append(b, m2.AP)
		}
	}
	tt, err := eval.PairedTTest(a, b)
	if err != nil {
		log.Fatal(err)
	}
	wx, err := eval.WilcoxonSignedRank(a, b)
	if err != nil {
		log.Fatal(err)
	}
	rz, err := eval.RandomizationTest(a, b, 10000, 1)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nsignificance over %d paired sessions:\n", len(a))
	fmt.Printf("  paired t-test:  %s\n", tt)
	fmt.Printf("  wilcoxon:       %s\n", wx)
	fmt.Printf("  randomisation:  %s\n", rz)
	if tt.Significant(0.05) && wx.Significant(0.05) {
		fmt.Println("\nconclusion: the combined adaptive model significantly outperforms")
		fmt.Println("the non-adaptive baseline under simulated evaluation — the outcome")
		fmt.Println("the paper's research programme set out to establish.")
	} else {
		fmt.Println("\nconclusion: no significant difference at this scale.")
	}
}
