// iTV: the paper's second interaction environment — a remote-control
// interface where text entry is expensive but explicit relevance keys
// are cheap. A simulated lean-back viewer searches with one short
// query, browses small pages, and rates shots with the +/- keys; the
// system adapts mostly from that explicit channel.
package main

import (
	"fmt"
	"log"

	"repro"
	"repro/internal/ilog"
	"repro/internal/simulation"
)

func main() {
	arch, err := repro.GenerateArchive(repro.TinyArchive(), 3)
	if err != nil {
		log.Fatal(err)
	}
	sys, err := repro.NewAdaptiveSystem(arch, repro.Combined())
	if err != nil {
		log.Fatal(err)
	}
	tv := repro.TV()
	fmt.Println("== interactive TV session ==")
	fmt.Printf("environment: page of %d story cells, query costs %.1f effort units\n",
		tv.PageSize, tv.QueryCost(12))
	fmt.Printf("             (one rating keypress: %.1f units — the cheap channel)\n\n",
		tv.ActionCost(repro.ActionRate))

	// A diligent lean-back viewer; the TV environment caps what they
	// can express.
	sim, err := simulation.New(arch, sys, tv, simulation.Diligent(), 99)
	if err != nil {
		log.Fatal(err)
	}
	topic := arch.Truth.SearchTopics[2]
	judg := repro.TopicJudgments(arch, topic.ID)
	fmt.Printf("task: find %q footage (%d relevant shots)\n\n", topic.Query, judg.NumRelevant(1))

	sr, err := sim.RunSession("itv-demo", nil, topic, 4)
	if err != nil {
		log.Fatal(err)
	}

	counts := map[repro.Action]int{}
	ratings := 0
	for _, e := range sr.Events {
		counts[e.Action]++
		if e.Action == repro.ActionRate {
			ratings++
		}
	}
	fmt.Println("what the remote control logged:")
	for _, a := range ilog.Actions() {
		if counts[a] > 0 {
			fmt.Printf("  %-16s x%d\n", a, counts[a])
		}
	}
	fmt.Printf("\neffort spent: %.1f of %.1f units\n", sr.EffortSpent, tv.SessionBudget)
	fmt.Printf("query iterations completed: %d (text entry is expensive on a remote)\n", len(sr.PerIteration))
	if len(sr.PerIteration) > 1 {
		first, last := sr.PerIteration[0], sr.Final
		fmt.Printf("\nadaptation across the session:\n")
		fmt.Printf("  first iteration: AP=%.3f P@10=%.2f\n", first.AP, first.P10)
		fmt.Printf("  final iteration: AP=%.3f P@10=%.2f\n", last.AP, last.P10)
	}
	fmt.Printf("\ncompare: the same task on the desktop interface emits far more\n")
	fmt.Printf("implicit evidence — run the userstudy example to see both side by side.\n")
}
