// Userstudy: the paper's evaluation methodology end-to-end — simulate
// a user population on both interaction environments, collect the
// interaction logs, and analyse which interface features were reliable
// implicit indicators of relevance.
package main

import (
	"fmt"
	"log"

	"repro"
	"repro/internal/collection"
	"repro/internal/ilog"
)

func main() {
	arch, err := repro.GenerateArchive(repro.TinyArchive(), 5)
	if err != nil {
		log.Fatal(err)
	}
	sys, err := repro.NewAdaptiveSystem(arch, repro.Combined())
	if err != nil {
		log.Fatal(err)
	}
	topics := arch.Truth.SearchTopics[:4]
	oracle := func(topicID int, shotID string) bool {
		return arch.Truth.Qrels.Grade(topicID, collection.ShotID(shotID)) >= 1
	}

	fmt.Println("== simulated user study: desktop vs interactive TV ==")
	fmt.Printf("population: 3 stereotype users x %d topics x 3 query iterations\n\n", len(topics))

	for _, iface := range []*repro.Interface{repro.Desktop(), repro.TV()} {
		study, err := repro.RunStudy(arch, sys, iface, 3, topics, 3, 42)
		if err != nil {
			log.Fatal(err)
		}
		sessions := ilog.AnalyzeSessions(study.Events)
		implicit, explicit, queries := ilog.MeanEventsPerSession(sessions)

		fmt.Printf("--- %s ---\n", iface.Name)
		fmt.Printf("sessions: %d   events: %d\n", len(study.Sessions), len(study.Events))
		fmt.Printf("per session: %.1f implicit, %.1f explicit, %.1f queries\n",
			implicit, explicit, queries)
		fmt.Printf("retrieval: MAP %.3f (first) -> %.3f (final)\n\n",
			study.MeanFirst.AP, study.MeanFinal.AP)

		fmt.Println("which actions indicated relevance? (per-indicator precision)")
		fmt.Printf("  %-16s %7s %10s\n", "action", "events", "precision")
		for _, st := range ilog.AnalyzeIndicators(study.Events, oracle) {
			fmt.Printf("  %-16s %7d %10.3f\n", st.Action, st.Count, st.Precision)
		}
		fmt.Println()
	}
	fmt.Println("reading: keyframe clicks and long plays are strong indicators on both")
	fmt.Println("environments; browsing past something is weak evidence; the desktop")
	fmt.Println("yields several times more implicit feedback, while the TV viewer")
	fmt.Println("compensates with the remote's explicit rating keys.")
}
