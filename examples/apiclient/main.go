// API client: the versioned service surface end-to-end — an in-process
// ivrserve-style backend on a loopback port, driven entirely through
// the typed /api/v1 Go SDK (internal/client). This is the integration
// every front-end in the paper's framework proposal shares: create a
// profiled session, search with pagination, stream results as NDJSON,
// feed implicit evidence back, and watch the next ranking adapt.
package main

import (
	"context"
	"fmt"
	"log"
	"net"
	"net/http"
	"time"

	"repro"
	"repro/internal/client"
	"repro/internal/ilog"
	"repro/internal/webapi"
)

func main() {
	// 1. Backend: an adaptive system over a tiny synthetic archive,
	//    served on a random loopback port (exactly what `ivrserve`
	//    does, minus the flags).
	arch, err := repro.GenerateArchive(repro.TinyArchive(), 5)
	if err != nil {
		log.Fatal(err)
	}
	sys, err := repro.NewAdaptiveSystem(arch, repro.Combined())
	if err != nil {
		log.Fatal(err)
	}
	srv, err := webapi.NewServer(sys, webapi.WithSessionTTL(10*time.Minute))
	if err != nil {
		log.Fatal(err)
	}
	defer srv.Close()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		log.Fatal(err)
	}
	httpSrv := &http.Server{Handler: srv.Handler()}
	go httpSrv.Serve(ln)
	defer httpSrv.Close()
	baseURL := "http://" + ln.Addr().String()
	fmt.Printf("backend: %d shots served at %s/api/v1\n\n", arch.Collection.NumShots(), baseURL)

	// 2. Front-end: everything below goes through the typed SDK — no
	//    hand-rolled HTTP.
	c, err := client.New(baseURL,
		client.WithTimeout(10*time.Second),
		client.WithRetry(2, 100*time.Millisecond))
	if err != nil {
		log.Fatal(err)
	}
	ctx := context.Background()
	if _, err := c.Healthz(ctx); err != nil {
		log.Fatal(err)
	}

	// A viewer who registered an interest in sports.
	sessionID, err := c.CreateSession(ctx, client.CreateSessionRequest{
		UserID:    "alice",
		Interests: map[string]float64{"sports": 0.8},
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("session %s created for alice (sports=0.8)\n\n", sessionID[:9]+"…")

	// 3. Search a ground-truth topic, first page only.
	topic := arch.Truth.SearchTopics[0]
	fmt.Printf("query: %q\n", topic.Query)
	page, err := c.Search(ctx, client.SearchRequest{
		SessionID: sessionID, Query: topic.Query, Limit: 5,
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("page 1 of %d ranked hits (%d candidates):\n", page.Total, page.Candidates)
	for _, h := range page.Hits {
		fmt.Printf("  %2d. %-16s %.3f  [%s] %s\n", h.Rank+1, h.ShotID, h.Score, h.Category, h.Title)
	}

	// ...and the second page of the same ranking.
	page2, err := c.Search(ctx, client.SearchRequest{
		SessionID: sessionID, Query: topic.Query, Offset: 5, Limit: 5,
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("page 2: hits %d..%d of %d\n\n", page2.Offset+1, page2.Offset+len(page2.Hits), page2.Total)

	// 4. The viewer clicks and watches the top result; the interface
	//    ships the evidence as one event batch.
	top := page.Hits[0]
	shot, err := c.Shot(ctx, top.ShotID)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("alice clicks %s and watches %.0fs of it\n", top.ShotID, shot.Seconds)
	observed, err := c.SendEvents(ctx, sessionID, []ilog.Event{
		{Action: ilog.ActionClickKeyframe, ShotID: top.ShotID, Rank: 0},
		{Action: ilog.ActionPlay, ShotID: top.ShotID, Rank: 0, Seconds: shot.Seconds},
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("server observed %d events\n\n", observed)

	// 5. The next iteration adapts; consume it as an NDJSON stream the
	//    way a painting front-end would.
	fmt.Println("adapted ranking (streamed):")
	summary, err := c.SearchStream(ctx,
		client.SearchRequest{SessionID: sessionID, Query: topic.Query, Limit: 5},
		func(h client.Hit) error {
			moved := " "
			if h.ShotID == top.ShotID && h.Rank == 0 {
				moved = "*"
			}
			fmt.Printf("  %2d.%s %-16s %.3f  [%s] %s\n", h.Rank+1, moved, h.ShotID, h.Score, h.Category, h.Title)
			return nil
		})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("stream summary: step %d, %d ranked hits\n\n", summary.Step, summary.Total)

	// 6. Session state shows the accumulated evidence; then hang up.
	st, err := c.Session(ctx, sessionID)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("session state: step=%d evidence=%d seen=%d\n", st.Step, st.Evidence, st.SeenShots)
	if err := c.DeleteSession(ctx, sessionID); err != nil {
		log.Fatal(err)
	}
	if _, err := c.Session(ctx, sessionID); client.IsNotFound(err) {
		fmt.Println("session deleted; the server answers 404 with the error envelope")
	}
}
