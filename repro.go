// Package repro is the public facade of the adaptive video retrieval
// library reproducing Hopfgartner, "Studying Interaction Methodologies
// in Video Retrieval" (VLDB 2008).
//
// The library builds everything the paper's research programme needs:
//
//   - a synthetic news-video archive with ground-truth topics and
//     relevance judgements (the stand-in for BBC/TRECVID data);
//   - an inverted-index search engine (BM25 / TF-IDF / Dirichlet LM)
//     with checksummed persistence;
//   - the adaptive retrieval model combining static user profiles with
//     implicit relevance feedback (the paper's contribution);
//   - interface capability models for the desktop and interactive-TV
//     environments, and the interaction-log machinery around them;
//   - a simulated-user evaluation framework (stereotypes, studies, log
//     replay) and a TREC-style metrics/significance layer;
//   - the community implicit-feedback recommendation graph.
//
// Quick start:
//
//	arch, _ := repro.GenerateArchive(repro.TinyArchive(), 1)
//	sys, _ := repro.NewAdaptiveSystem(arch, repro.Combined())
//	sess := sys.NewSession("s1", nil)
//	res, _ := sess.Query("some topic terms")
//	_ = sess.Observe(repro.ClickEvent("s1", res.Hits[0].ID, 0))
//	adapted, _ := sess.Query("some topic terms")
//
// The subsystems live in internal/ packages; this package re-exports
// the types and constructors a downstream user needs. See DESIGN.md
// for the system inventory and EXPERIMENTS.md for the reproduced
// evaluation.
package repro

import (
	"repro/internal/collection"
	"repro/internal/core"
	"repro/internal/eval"
	"repro/internal/feedback"
	"repro/internal/ilog"
	"repro/internal/profile"
	"repro/internal/recommend"
	"repro/internal/search"
	"repro/internal/simulation"
	"repro/internal/store"
	"repro/internal/synth"
	"repro/internal/ui"
)

// Re-exported core types. These aliases are the library's public
// vocabulary; the internal packages carry the implementations.
type (
	// Archive is a generated news-video collection plus ground truth.
	Archive = synth.Archive
	// ArchiveConfig parameterises synthetic archive generation.
	ArchiveConfig = synth.Config
	// SearchTopic is a TREC-style evaluation topic.
	SearchTopic = synth.SearchTopic

	// Collection is the news-video data model.
	Collection = collection.Collection
	// Shot is the retrieval unit.
	Shot = collection.Shot
	// Category is a news desk category.
	Category = collection.Category

	// SystemConfig selects and parameterises adaptation behaviour.
	SystemConfig = core.Config
	// System is the wired adaptive retrieval model.
	System = core.System
	// Session is one user's adaptive search session.
	Session = core.Session

	// Results is a ranked result list.
	Results = search.Results
	// Hit is one retrieved shot.
	Hit = search.Hit

	// Profile is a static user interest profile.
	Profile = profile.Profile

	// Event is one logged interaction.
	Event = ilog.Event
	// Action is an interaction kind.
	Action = ilog.Action

	// Interface is an interaction-environment model.
	Interface = ui.Interface

	// Stereotype is a simulated-user behaviour model.
	Stereotype = simulation.Stereotype
	// StudyResult aggregates a simulated user study.
	StudyResult = simulation.StudyResult

	// Metrics is the rank-metric bundle (AP, P@k, nDCG, ...).
	Metrics = eval.Metrics
	// Judgments holds graded relevance assessments for one query.
	Judgments = eval.Judgments

	// Graph is the community implicit-feedback graph.
	Graph = recommend.Graph

	// WeightingScheme converts interaction evidence to relevance mass.
	WeightingScheme = feedback.Scheme
)

// The interaction vocabulary (see ilog for semantics).
const (
	ActionQuery         = ilog.ActionQuery
	ActionBrowse        = ilog.ActionBrowse
	ActionClickKeyframe = ilog.ActionClickKeyframe
	ActionPlay          = ilog.ActionPlay
	ActionSlide         = ilog.ActionSlide
	ActionHighlight     = ilog.ActionHighlight
	ActionRate          = ilog.ActionRate
)

// DefaultArchive returns the month-scale archive configuration.
func DefaultArchive() ArchiveConfig { return synth.DefaultConfig() }

// TinyArchive returns the fast test-scale configuration.
func TinyArchive() ArchiveConfig { return synth.TinyConfig() }

// GenerateArchive builds a synthetic archive; identical (cfg, seed)
// pairs produce identical archives.
func GenerateArchive(cfg ArchiveConfig, seed int64) (*Archive, error) {
	return synth.Generate(cfg, seed)
}

// Baseline returns the non-adaptive system configuration.
func Baseline() SystemConfig { return SystemConfig{} }

// ProfileOnly returns static-profile re-ranking only.
func ProfileOnly() SystemConfig { return SystemConfig{UseProfile: true} }

// ImplicitOnly returns implicit-feedback adaptation only.
func ImplicitOnly() SystemConfig { return SystemConfig{UseImplicit: true} }

// Combined returns the full adaptive model (profile + implicit).
func Combined() SystemConfig {
	return SystemConfig{UseProfile: true, UseImplicit: true}
}

// NewAdaptiveSystem indexes an archive's collection and wires the
// adaptive retrieval model over it.
func NewAdaptiveSystem(arch *Archive, cfg SystemConfig) (*System, error) {
	return core.NewSystemFromCollection(arch.Collection, cfg)
}

// NewSystemOverCollection wires a system over an externally built
// collection.
func NewSystemOverCollection(coll *Collection, cfg SystemConfig) (*System, error) {
	return core.NewSystemFromCollection(coll, cfg)
}

// NewProfile creates a neutral static profile for a user.
func NewProfile(userID string) *Profile { return profile.New(userID) }

// Desktop and TV return the two studied interaction environments.
func Desktop() *Interface { return ui.Desktop() }
func TV() *Interface      { return ui.TV() }

// Stereotypes returns the built-in simulated-user population.
func Stereotypes() []Stereotype { return simulation.Stereotypes() }

// RunStudy simulates users (one per stereotype rotation) performing
// every topic on the given system and interface.
func RunStudy(arch *Archive, sys *System, iface *Interface,
	numUsers int, topics []*SearchTopic, iterations int, seed int64) (*StudyResult, error) {
	return simulation.RunStudy(arch, sys, iface, simulation.MakeUsers(numUsers), topics, iterations, seed)
}

// TopicJudgments converts a search topic's ground-truth qrels into the
// evaluation layer's form.
func TopicJudgments(arch *Archive, topicID int) Judgments {
	j := Judgments{}
	for shot, g := range arch.Truth.Qrels[topicID] {
		j[string(shot)] = g
	}
	return j
}

// Evaluate computes the metric bundle of a ranking against judgments.
func Evaluate(ranking []string, judg Judgments) Metrics {
	return eval.Compute(ranking, judg)
}

// ClickEvent builds a keyframe-click event (the strongest implicit
// indicator) for feeding Session.Observe.
func ClickEvent(sessionID, shotID string, rank int) Event {
	return Event{SessionID: sessionID, Action: ActionClickKeyframe, ShotID: shotID, Rank: rank}
}

// PlayEvent builds a playback event with the watched duration.
func PlayEvent(sessionID, shotID string, rank int, seconds float64) Event {
	return Event{SessionID: sessionID, Action: ActionPlay, ShotID: shotID, Rank: rank, Seconds: seconds}
}

// RateEvent builds an explicit rating event (value must be +1 or -1).
func RateEvent(sessionID, shotID string, value int) Event {
	return Event{SessionID: sessionID, Action: ActionRate, ShotID: shotID, Rank: -1, Value: value}
}

// NewGraph returns an empty community implicit-feedback graph.
func NewGraph() *Graph { return recommend.NewGraph() }

// SaveArchive persists a complete archive (collection + ground truth)
// to a versioned, checksummed container file.
func SaveArchive(path string, arch *Archive) error { return store.Save(path, arch) }

// LoadArchive reopens a container written by SaveArchive.
func LoadArchive(path string) (*Archive, error) { return store.Load(path) }
