package repro_test

import (
	"path/filepath"
	"testing"

	"repro"
	"repro/internal/core"
	"repro/internal/ilog"
	"repro/internal/index"
	"repro/internal/search"
	"repro/internal/simulation"
	"repro/internal/text"
)

// TestFacadeEndToEnd drives the public API through the paper's core
// loop: generate, index, search, feed implicit evidence, adapt.
func TestFacadeEndToEnd(t *testing.T) {
	arch, err := repro.GenerateArchive(repro.TinyArchive(), 1)
	if err != nil {
		t.Fatal(err)
	}
	sys, err := repro.NewAdaptiveSystem(arch, repro.ImplicitOnly())
	if err != nil {
		t.Fatal(err)
	}
	improvedTopics, total := 0, 0
	for _, topic := range arch.Truth.SearchTopics {
		judg := repro.TopicJudgments(arch, topic.ID)
		sess := sys.NewSession("e2e", nil)
		res, err := sess.Query(topic.Query)
		if err != nil {
			t.Fatal(err)
		}
		before := repro.Evaluate(res.IDs(), judg)
		fed := 0
		for rank, h := range res.Hits {
			if judg[h.ID] >= 1 && fed < 3 {
				fed++
				if err := sess.Observe(repro.ClickEvent("e2e", h.ID, rank)); err != nil {
					t.Fatal(err)
				}
				if err := sess.Observe(repro.PlayEvent("e2e", h.ID, rank, 15)); err != nil {
					t.Fatal(err)
				}
			}
		}
		if fed == 0 {
			continue
		}
		adapted, err := sess.Query(topic.Query)
		if err != nil {
			t.Fatal(err)
		}
		after := repro.Evaluate(adapted.IDs(), judg)
		total++
		if after.AP >= before.AP {
			improvedTopics++
		}
	}
	if total == 0 {
		t.Fatal("no topic produced feedback")
	}
	if improvedTopics*2 < total {
		t.Errorf("adaptation improved only %d/%d topics", improvedTopics, total)
	}
}

// TestFacadeStudyAndReplay runs a small simulated study through the
// facade and replays its log.
func TestFacadeStudyAndReplay(t *testing.T) {
	arch, err := repro.GenerateArchive(repro.TinyArchive(), 2)
	if err != nil {
		t.Fatal(err)
	}
	sys, err := repro.NewAdaptiveSystem(arch, repro.Combined())
	if err != nil {
		t.Fatal(err)
	}
	study, err := repro.RunStudy(arch, sys, repro.Desktop(), 2, arch.Truth.SearchTopics[:2], 2, 7)
	if err != nil {
		t.Fatal(err)
	}
	if len(study.Sessions) != 4 || len(study.Events) == 0 {
		t.Fatalf("study shape wrong: %d sessions, %d events", len(study.Sessions), len(study.Events))
	}
	// Log round trip through disk.
	path := filepath.Join(t.TempDir(), "log.jsonl")
	if err := ilog.SaveFile(path, study.Events); err != nil {
		t.Fatal(err)
	}
	events, err := ilog.LoadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(events) != len(study.Events) {
		t.Fatalf("log round trip lost events: %d vs %d", len(events), len(study.Events))
	}
	ms, err := simulation.Replay(sys, events, arch.Truth.Qrels)
	if err != nil {
		t.Fatal(err)
	}
	if len(ms) != len(study.Sessions) {
		t.Errorf("replay covered %d of %d sessions", len(ms), len(study.Sessions))
	}
}

// TestIndexPersistenceAcrossEngine verifies a built index round-trips
// through disk and serves identical rankings.
func TestIndexPersistenceAcrossEngine(t *testing.T) {
	arch, err := repro.GenerateArchive(repro.TinyArchive(), 3)
	if err != nil {
		t.Fatal(err)
	}
	an := text.NewAnalyzer()
	ix, err := core.BuildIndex(arch.Collection, an)
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "ix.ivridx")
	if err := ix.Save(path); err != nil {
		t.Fatal(err)
	}
	loaded, err := index.Load(path)
	if err != nil {
		t.Fatal(err)
	}
	e1 := search.NewEngine(ix, an)
	e2 := search.NewEngine(loaded, an)
	for _, topic := range arch.Truth.SearchTopics[:3] {
		r1, err := e1.Search(e1.ParseText(topic.Query), search.Options{K: 20})
		if err != nil {
			t.Fatal(err)
		}
		r2, err := e2.Search(e2.ParseText(topic.Query), search.Options{K: 20})
		if err != nil {
			t.Fatal(err)
		}
		if len(r1.Hits) != len(r2.Hits) {
			t.Fatalf("hit counts differ after reload")
		}
		for i := range r1.Hits {
			if r1.Hits[i].ID != r2.Hits[i].ID || r1.Hits[i].Score != r2.Hits[i].Score {
				t.Fatalf("ranking differs after reload at %d", i)
			}
		}
	}
}

// TestPresetsThroughFacade checks the four preset configurations wire
// correctly and order sanely on one topic.
func TestPresetsThroughFacade(t *testing.T) {
	arch, err := repro.GenerateArchive(repro.TinyArchive(), 4)
	if err != nil {
		t.Fatal(err)
	}
	for _, cfg := range []repro.SystemConfig{
		repro.Baseline(), repro.ProfileOnly(), repro.ImplicitOnly(), repro.Combined(),
	} {
		sys, err := repro.NewAdaptiveSystem(arch, cfg)
		if err != nil {
			t.Fatal(err)
		}
		sess := sys.NewSession("p", repro.NewProfile("u"))
		if _, err := sess.Query(arch.Truth.SearchTopics[0].Query); err != nil {
			t.Fatal(err)
		}
	}
}

// TestFacadeArchivePersistence exercises Save/LoadArchive through the
// facade.
func TestFacadeArchivePersistence(t *testing.T) {
	arch, err := repro.GenerateArchive(repro.TinyArchive(), 8)
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "a.ivrarc")
	if err := repro.SaveArchive(path, arch); err != nil {
		t.Fatal(err)
	}
	got, err := repro.LoadArchive(path)
	if err != nil {
		t.Fatal(err)
	}
	if got.Collection.NumShots() != arch.Collection.NumShots() {
		t.Error("archive round trip lost shots")
	}
	// The reloaded archive drives a working system.
	sys, err := repro.NewAdaptiveSystem(got, repro.Baseline())
	if err != nil {
		t.Fatal(err)
	}
	if _, err := sys.SearchOnce(got.Truth.SearchTopics[0].Query); err != nil {
		t.Fatal(err)
	}
}

// TestFacadeEnvironmentsAndStereotypes covers the remaining surface.
func TestFacadeEnvironmentsAndStereotypes(t *testing.T) {
	if repro.Desktop().Name != "desktop" || repro.TV().Name != "tv" {
		t.Error("environment constructors wrong")
	}
	if len(repro.Stereotypes()) < 3 {
		t.Error("stereotype population too small")
	}
	g := repro.NewGraph()
	if g.NumNodes() != 0 {
		t.Error("fresh graph not empty")
	}
	if repro.DefaultArchive().Days <= repro.TinyArchive().Days {
		t.Error("default archive should be larger than tiny")
	}
}

// TestEventConstructors checks the facade event helpers validate.
func TestEventConstructors(t *testing.T) {
	for _, e := range []repro.Event{
		repro.ClickEvent("s", "shot", 0),
		repro.PlayEvent("s", "shot", 1, 12.5),
		repro.RateEvent("s", "shot", -1),
	} {
		if err := e.Validate(); err != nil {
			t.Errorf("constructor produced invalid event: %v", err)
		}
	}
}
