// Benchmarks regenerating every derived table and figure (DESIGN.md
// experiment index) at Quick scale, plus the engine micro-benchmarks
// behind T12. `go test -bench=. -benchmem` runs the lot;
// `cmd/ivrbench` prints the full-scale tables these summarise.
package repro_test

import (
	"bytes"
	"context"
	"net/http/httptest"
	"testing"

	"repro"
	"repro/internal/client"
	"repro/internal/core"
	"repro/internal/experiments"
	"repro/internal/index"
	"repro/internal/search"
	"repro/internal/text"
	"repro/internal/trace"
	"repro/internal/webapi"
)

// benchExperiment runs one experiment per iteration at Quick scale.
func benchExperiment(b *testing.B, id string) {
	b.Helper()
	p := experiments.Quick()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := experiments.Run(id, p); err != nil {
			b.Fatalf("%s: %v", id, err)
		}
	}
}

// One bench per derived table/figure.

func BenchmarkExpT1SystemComparison(b *testing.B)  { benchExperiment(b, "T1") }
func BenchmarkExpT1aMixAblation(b *testing.B)      { benchExperiment(b, "T1a") }
func BenchmarkExpT2IndicatorValue(b *testing.B)    { benchExperiment(b, "T2") }
func BenchmarkExpT3WeightingSchemes(b *testing.B)  { benchExperiment(b, "T3") }
func BenchmarkExpT3aExpansionTerms(b *testing.B)   { benchExperiment(b, "T3a") }
func BenchmarkExpF4OstensiveDecay(b *testing.B)    { benchExperiment(b, "F4") }
func BenchmarkExpT5Environments(b *testing.B)      { benchExperiment(b, "T5") }
func BenchmarkExpF6DwellReliability(b *testing.B)  { benchExperiment(b, "F6") }
func BenchmarkExpT7ImplicitGraph(b *testing.B)     { benchExperiment(b, "T7") }
func BenchmarkExpT7aGraphAlgorithms(b *testing.B)  { benchExperiment(b, "T7a") }
func BenchmarkExpF8SessionAdaptation(b *testing.B) { benchExperiment(b, "F8") }
func BenchmarkExpT9ASRSensitivity(b *testing.B)    { benchExperiment(b, "T9") }
func BenchmarkExpT10ConceptAccuracy(b *testing.B)  { benchExperiment(b, "T10") }
func BenchmarkExpT11SimulationFidelity(b *testing.B) {
	benchExperiment(b, "T11")
}

// T12: engine micro-benchmarks over a realistic archive.

func benchArchiveSystem(b *testing.B) (*repro.Archive, *core.System) {
	b.Helper()
	arch, err := repro.GenerateArchive(repro.TinyArchive(), 12)
	if err != nil {
		b.Fatal(err)
	}
	sys, err := repro.NewAdaptiveSystem(arch, repro.ImplicitOnly())
	if err != nil {
		b.Fatal(err)
	}
	return arch, sys
}

// BenchmarkIndexing measures end-to-end collection indexing.
func BenchmarkIndexing(b *testing.B) {
	arch, err := repro.GenerateArchive(repro.TinyArchive(), 12)
	if err != nil {
		b.Fatal(err)
	}
	an := text.NewAnalyzer()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := core.BuildIndex(arch.Collection, an); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkQueryBM25 measures one ranked query.
func BenchmarkQueryBM25(b *testing.B) {
	arch, sys := benchArchiveSystem(b)
	q := arch.Truth.SearchTopics[0].Query
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := sys.SearchOnce(q); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkQueryAdapted measures an adapted query (expansion active).
func BenchmarkQueryAdapted(b *testing.B) {
	arch, sys := benchArchiveSystem(b)
	topic := arch.Truth.SearchTopics[0]
	sess := sys.NewSession("bench", nil)
	res, err := sess.Query(topic.Query)
	if err != nil {
		b.Fatal(err)
	}
	judg := repro.TopicJudgments(arch, topic.ID)
	fed := 0
	for rank, h := range res.Hits {
		if judg[h.ID] >= 1 && fed < 3 {
			fed++
			if err := sess.Observe(repro.ClickEvent("bench", h.ID, rank)); err != nil {
				b.Fatal(err)
			}
		}
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := sess.Query(topic.Query); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkPersistence measures index serialise + deserialise.
func BenchmarkPersistence(b *testing.B) {
	arch, err := repro.GenerateArchive(repro.TinyArchive(), 12)
	if err != nil {
		b.Fatal(err)
	}
	ix, err := core.BuildIndex(arch.Collection, text.NewAnalyzer())
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		var buf bytes.Buffer
		if _, err := ix.WriteTo(&buf); err != nil {
			b.Fatal(err)
		}
		if _, err := index.Read(&buf); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkHTTPSearch measures the full client→server search hot
// path in-process (SDK encode → HTTP → session manager → adapted
// query → page decorate → JSON decode): the baseline future caching
// and sharding PRs must beat.
func BenchmarkHTTPSearch(b *testing.B) {
	arch, sys := benchArchiveSystem(b)
	srv, err := webapi.NewServer(sys)
	if err != nil {
		b.Fatal(err)
	}
	defer srv.Close()
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()
	c, err := client.New(ts.URL)
	if err != nil {
		b.Fatal(err)
	}
	ctx := context.Background()
	sid, err := c.CreateSession(ctx, client.CreateSessionRequest{})
	if err != nil {
		b.Fatal(err)
	}
	q := arch.Truth.SearchTopics[0].Query
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		page, err := c.Search(ctx, client.SearchRequest{SessionID: sid, Query: q, Limit: 20})
		if err != nil {
			b.Fatal(err)
		}
		if len(page.Hits) == 0 {
			b.Fatal("empty page")
		}
	}
}

// benchAdaptedSession builds a system with the given engine-layer
// config over the bench archive and returns a session warmed with
// three positive clicks, so implicit expansion is active — the
// adaptive-loop hot path the cache and fan-out target.
func benchAdaptedSession(b *testing.B, cfg repro.SystemConfig) (*core.Session, string) {
	b.Helper()
	arch, err := repro.GenerateArchive(repro.TinyArchive(), 12)
	if err != nil {
		b.Fatal(err)
	}
	sys, err := repro.NewSystemOverCollection(arch.Collection, cfg)
	if err != nil {
		b.Fatal(err)
	}
	topic := arch.Truth.SearchTopics[0]
	sess := sys.NewSession("bench", nil)
	res, err := sess.Query(topic.Query)
	if err != nil {
		b.Fatal(err)
	}
	judg := repro.TopicJudgments(arch, topic.ID)
	fed := 0
	for rank, h := range res.Hits {
		if judg[h.ID] >= 1 && fed < 3 {
			fed++
			if err := sess.Observe(repro.ClickEvent("bench", h.ID, rank)); err != nil {
				b.Fatal(err)
			}
		}
	}
	if fed == 0 {
		b.Fatal("no relevant hits to click; expansion would be inactive")
	}
	return sess, topic.Query
}

// BenchmarkSearch measures one in-process adapted query through the
// engine layer under its three execution modes: the sequential
// single-segment scan, the multi-segment fan-out, and the
// evidence-keyed result cache (warm after the first iteration: the
// query, evidence state and config — and therefore the key — do not
// change between iterations).
func BenchmarkSearch(b *testing.B) {
	cases := []struct {
		name string
		cfg  repro.SystemConfig
	}{
		{"sequential", repro.ImplicitOnly()},
		{"fanout4", func() repro.SystemConfig {
			c := repro.ImplicitOnly()
			c.Segments, c.SearchWorkers = 4, 4
			return c
		}()},
		{"cached", func() repro.SystemConfig {
			c := repro.ImplicitOnly()
			c.Segments, c.SearchWorkers, c.CacheSize = 4, 4, 1024
			return c
		}()},
	}
	for _, bc := range cases {
		b.Run(bc.name, func(b *testing.B) {
			sess, q := benchAdaptedSession(b, bc.cfg)
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := sess.Query(q); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
	// The traced variant of the sequential case prices the tracing
	// subsystem: every iteration builds a live span tree (expand,
	// prepare, segment, merge, cache spans) and files it into a
	// collector, as a request with an active trace does. Compare with
	// "sequential" to read the overhead; the acceptance bound is 5%.
	b.Run("sequential_traced", func(b *testing.B) {
		sess, q := benchAdaptedSession(b, repro.ImplicitOnly())
		col := trace.NewCollector(trace.CollectorConfig{Tier: trace.TierServe})
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			tr, root := trace.New("rbench", trace.TierServe, "GET /api/v1/search")
			ctx := trace.NewContext(context.Background(), tr, root)
			if _, err := sess.QueryContext(ctx, q); err != nil {
				b.Fatal(err)
			}
			col.Finish(tr)
		}
	})
}

// benchHTTPSearch drives the full client→server search hot path
// against a system with the given engine-layer config; withEvidence
// feeds positive clicks first so the search exercises the adapted
// (expansion-active) path — the dominant shape of simulated-study
// traffic.
func benchHTTPSearch(b *testing.B, cfg repro.SystemConfig, withEvidence bool) {
	b.Helper()
	arch, err := repro.GenerateArchive(repro.TinyArchive(), 12)
	if err != nil {
		b.Fatal(err)
	}
	sys, err := repro.NewSystemOverCollection(arch.Collection, cfg)
	if err != nil {
		b.Fatal(err)
	}
	srv, err := webapi.NewServer(sys)
	if err != nil {
		b.Fatal(err)
	}
	defer srv.Close()
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()
	c, err := client.New(ts.URL)
	if err != nil {
		b.Fatal(err)
	}
	ctx := context.Background()
	sid, err := c.CreateSession(ctx, client.CreateSessionRequest{})
	if err != nil {
		b.Fatal(err)
	}
	topic := arch.Truth.SearchTopics[0]
	if withEvidence {
		page, err := c.Search(ctx, client.SearchRequest{SessionID: sid, Query: topic.Query, Limit: 20})
		if err != nil {
			b.Fatal(err)
		}
		judg := repro.TopicJudgments(arch, topic.ID)
		var events []repro.Event
		for _, h := range page.Hits {
			if judg[h.ShotID] >= 1 && len(events) < 3 {
				events = append(events, repro.ClickEvent(sid, h.ShotID, h.Rank))
			}
		}
		if len(events) == 0 {
			b.Fatal("no relevant hits to click")
		}
		if _, err := c.SendEvents(ctx, sid, events); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		page, err := c.Search(ctx, client.SearchRequest{SessionID: sid, Query: topic.Query, Limit: 20})
		if err != nil {
			b.Fatal(err)
		}
		if len(page.Hits) == 0 {
			b.Fatal("empty page")
		}
	}
}

// BenchmarkHTTPSearchCached is BenchmarkHTTPSearch against a server
// with the engine layer fully enabled (multi-segment fan-out + result
// cache): the after to its before.
func BenchmarkHTTPSearchCached(b *testing.B) {
	cfg := repro.ImplicitOnly()
	cfg.Segments, cfg.SearchWorkers, cfg.CacheSize = 4, 4, 4096
	benchHTTPSearch(b, cfg, false)
}

// BenchmarkHTTPSearchAdapted measures the expansion-active search over
// HTTP — the adaptive loop's real per-iteration cost — uncached versus
// cached.
func BenchmarkHTTPSearchAdapted(b *testing.B) {
	b.Run("uncached", func(b *testing.B) {
		benchHTTPSearch(b, repro.ImplicitOnly(), true)
	})
	b.Run("cached", func(b *testing.B) {
		cfg := repro.ImplicitOnly()
		cfg.Segments, cfg.SearchWorkers, cfg.CacheSize = 4, 4, 4096
		benchHTTPSearch(b, cfg, true)
	})
}

// BenchmarkFusion measures CombSUM fusion of two 100-hit lists.
func BenchmarkFusion(b *testing.B) {
	arch, sys := benchArchiveSystem(b)
	topic := arch.Truth.SearchTopics[0]
	engine := sys.Engine()
	tq := engine.ParseText(topic.Query)
	tr, err := engine.Search(tq, search.Options{K: 100})
	if err != nil {
		b.Fatal(err)
	}
	topicT := arch.Truth.Topics[topic.TopicID]
	concepts := make([]string, len(topicT.Concepts))
	for i, c := range topicT.Concepts {
		concepts[i] = string(c)
	}
	cr, err := engine.Search(search.ConceptQuery(concepts...), search.Options{K: 100})
	if err != nil {
		b.Fatal(err)
	}
	lists := [][]search.Hit{tr.Hits, cr.Hits}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		search.Fuse(search.CombSUM{}, lists, 100)
	}
}
