// Command ivrbench runs the derived experiment suite (DESIGN.md) and
// prints paper-style tables. EXPERIMENTS.md records its full-scale
// output.
//
// Usage:
//
//	ivrbench                  # run everything at full scale
//	ivrbench -exp T1,T5       # selected experiments
//	ivrbench -scale quick     # reduced scale (fast smoke run)
//	ivrbench -seed 7          # change the master seed
//	ivrbench -list            # list experiment IDs
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"repro/internal/experiments"
)

func main() {
	var (
		expFlag   = flag.String("exp", "", "comma-separated experiment IDs (default: all)")
		scaleFlag = flag.String("scale", "full", "experiment scale: full or quick")
		seedFlag  = flag.Int64("seed", 0, "override the master seed (0 = keep default)")
		listFlag  = flag.Bool("list", false, "list experiment IDs and exit")
	)
	flag.Parse()

	if *listFlag {
		for _, id := range experiments.IDs() {
			title, _ := experiments.Title(id)
			fmt.Printf("%-5s %s\n", id, title)
		}
		return
	}
	var p experiments.Params
	switch *scaleFlag {
	case "full":
		p = experiments.Default()
	case "quick":
		p = experiments.Quick()
	default:
		fmt.Fprintf(os.Stderr, "ivrbench: unknown scale %q (want full or quick)\n", *scaleFlag)
		os.Exit(2)
	}
	if *seedFlag != 0 {
		p.Seed = *seedFlag
	}
	ids := experiments.IDs()
	if *expFlag != "" {
		ids = strings.Split(*expFlag, ",")
		for i := range ids {
			ids[i] = strings.TrimSpace(ids[i])
		}
	}
	for _, id := range ids {
		start := time.Now()
		table, err := experiments.Run(id, p)
		if err != nil {
			fmt.Fprintf(os.Stderr, "ivrbench: %s: %v\n", id, err)
			os.Exit(1)
		}
		fmt.Println(table.String())
		fmt.Printf("[%s completed in %v]\n\n", id, time.Since(start).Round(time.Millisecond))
	}
}
