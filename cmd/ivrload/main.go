// Command ivrload load-tests a running ivrserve instance: a worker
// pool of simulated users replays full interactive sessions
// (create-session → search → send-events → shot-view → delete) over
// the /api/v1 SDK and reports per-endpoint throughput and latency
// quantiles, cross-checked against the server's own /api/v1/metrics
// counters.
//
// Usage:
//
//	ivrserve -quiet &                        # target server
//	ivrload -users 100 -sessions 500         # closed-loop saturation run
//	ivrload -mode open -rate 50 -duration 30s
//	ivrload -users 100 -sessions 500 -out bench_load.json
//	ivrload -server http://h1:8081,http://h2:8082
//	                                         # spread users over several replicas
//	ivrload -server http://router:8080 -crosscheck=false
//	                                         # through ivrroute (the router's
//	                                         # /api/v1/metrics is router-shaped, so
//	                                         # the per-route cross-check must be off)
//
// The query pool is derived from a locally generated archive
// (matching ivrserve's -seed/-full defaults) so the traffic issues
// realistic topic queries with ground-truth-guided behaviour; pass a
// different -seed/-full to match a non-default server.
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"repro/internal/client"
	"repro/internal/loadgen"
	"repro/internal/retrieval"
	"repro/internal/synth"
	"repro/internal/trace"
	"repro/internal/ui"
)

func main() {
	var (
		server     = flag.String("server", "http://localhost:8080", "target base URL(s), comma-separated; users are spread round-robin")
		crosscheck = flag.Bool("crosscheck", true, "verify client request totals against the server's /api/v1/metrics (single ivrserve targets only)")
		users      = flag.Int("users", 50, "concurrent virtual users")
		sessions   = flag.Int("sessions", 200, "total sessions to run (0 = run until -duration)")
		iterations = flag.Int("iterations", 3, "query iterations per session")
		mode       = flag.String("mode", "closed", "pacing: closed (think-time loop) or open (fixed arrival rate)")
		rate       = flag.Float64("rate", 20, "open-loop session arrivals per second")
		think      = flag.Duration("think", 0, "closed-loop mean think time between iterations")
		ramp       = flag.Duration("ramp", 0, "ramp-up window for worker starts")
		duration   = flag.Duration("duration", 0, "wall-clock bound (required when -sessions 0)")
		limit      = flag.Int("limit", 20, "search page size")
		ifaceName  = flag.String("iface", "desktop", "interface model: desktop or tv")
		seed       = flag.Int64("seed", 2008, "archive seed for the query pool (match the server's)")
		full       = flag.Bool("full", false, "derive queries from the full-scale archive")
		shots      = flag.Bool("shots", true, "fetch shot metadata for clicked results")
		out        = flag.String("out", "", "write the machine-readable report JSON here")
		timeout    = flag.Duration("timeout", 30*time.Second, "per-request client timeout")
		traceEvery = flag.Int("trace-sample", 0, "request the server's span tree for every Nth search and print the sampled trees (0 disables)")
	)
	flag.Parse()

	iface, err := ui.ByName(*ifaceName)
	if err != nil {
		fail("%v", err)
	}
	archCfg := synth.TinyConfig()
	if *full {
		archCfg = synth.DefaultConfig()
	}
	arch, err := synth.Generate(archCfg, *seed)
	if err != nil {
		fail("generate query pool: %v", err)
	}
	var queries []loadgen.Query
	for _, topic := range arch.Truth.SearchTopics {
		rel := map[string]bool{}
		for shot, g := range arch.Truth.Qrels[topic.ID] {
			rel[string(shot)] = g >= 1
		}
		queries = append(queries, loadgen.Query{
			Text: topic.Query, Verbose: topic.Verbose, TopicID: topic.ID, Relevant: rel,
		})
	}

	servers := splitAddrs(*server)
	if len(servers) == 0 {
		fail("-server is empty")
	}
	clients := make([]*client.Client, len(servers))
	for i, base := range servers {
		clients[i], err = client.New(base, client.WithTimeout(*timeout), client.WithUserAgent("ivrload/1"))
		if err != nil {
			fail("%v", err)
		}
	}
	c := clients[0]
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	for i, cl := range clients {
		if _, err := cl.Healthz(ctx); err != nil {
			fail("server %s not healthy: %v", servers[i], err)
		}
	}
	// The per-route cross-check compares this client's totals against
	// one server's counters — meaningless when the load is spread over
	// several targets (each sees a share) or proxied (the router's
	// metrics are router-shaped, and failover may legitimately retry).
	check := *crosscheck
	if check && len(servers) > 1 {
		fmt.Println("ivrload: multiple targets, disabling -crosscheck")
		check = false
	}
	var before *client.MetricsSnapshot
	if check {
		before, err = c.Metrics(ctx)
		if err != nil {
			fail("fetch metrics: %v", err)
		}
	}

	d, err := loadgen.New(loadgen.Config{
		Clients:     clients,
		Users:       *users,
		Sessions:    *sessions,
		Iterations:  *iterations,
		Pacing:      loadgen.Pacing(*mode),
		Rate:        *rate,
		ThinkTime:   *think,
		RampUp:      *ramp,
		Duration:    *duration,
		PageLimit:   *limit,
		Seed:        *seed,
		Iface:       iface,
		Queries:     queries,
		FetchShots:  *shots,
		TraceSample: *traceEvery,
	})
	if err != nil {
		fail("%v", err)
	}
	fmt.Printf("ivrload: %d users, %s pacing against %s\n", *users, *mode, *server)
	rep, err := d.Run(ctx)
	if err != nil {
		fail("run: %v", err)
	}
	fmt.Print(rep)
	if len(rep.TraceSamples) > 0 {
		fmt.Printf("  sampled traces (%d, every %dth search):\n", len(rep.TraceSamples), *traceEvery)
		for _, s := range rep.TraceSamples {
			fmt.Printf("    %s  %q  %.1fms\n", s.RequestID, s.Query, s.DurationMS)
			for _, line := range strings.Split(strings.TrimRight(trace.FormatTree(s.Root), "\n"), "\n") {
				fmt.Printf("      %s\n", line)
			}
		}
	}

	mismatches := 0
	var after *client.MetricsSnapshot
	var srch searchSummary
	if !check {
		fmt.Println("  server cross-check: disabled")
	} else {
		after, srch, mismatches = crosscheckRun(ctx, c, rep, before)
	}

	if *out != "" {
		summary := struct {
			Command string                  `json:"command"`
			Server  string                  `json:"server"`
			When    time.Time               `json:"when"`
			Report  *loadgen.Report         `json:"report"`
			Search  searchSummary           `json:"search_summary"`
			Metrics *client.MetricsSnapshot `json:"server_metrics,omitempty"`
		}{"ivrload", *server, time.Now().UTC(), rep, srch, after}
		data, err := json.MarshalIndent(summary, "", "  ")
		if err != nil {
			fail("encode report: %v", err)
		}
		if err := os.WriteFile(*out, append(data, '\n'), 0o644); err != nil {
			fail("write report: %v", err)
		}
		fmt.Printf("  report: %s\n", *out)
	}
	if rep.SessionsFailed > 0 || mismatches > 0 {
		fail("%d failed sessions, %d counter mismatches", rep.SessionsFailed, mismatches)
	}
}

// splitAddrs parses the comma-separated -server list.
func splitAddrs(s string) []string {
	var out []string
	for _, part := range strings.Split(s, ",") {
		if part = strings.TrimSpace(part); part != "" {
			out = append(out, part)
		}
	}
	return out
}

// crosscheckRun compares client-observed totals with the server's own
// counters, differenced against the pre-run snapshot so an
// already-running server doesn't skew the comparison. The server
// records a request just after writing its response, so on a mismatch
// the check refetches once after a short grace period before believing
// it.
func crosscheckRun(ctx context.Context, c *client.Client, rep *loadgen.Report, before *client.MetricsSnapshot) (*client.MetricsSnapshot, searchSummary, int) {
	after, err := c.Metrics(ctx)
	if err != nil {
		fail("fetch metrics: %v", err)
	}
	if countMismatches(rep, before, after) > 0 {
		time.Sleep(250 * time.Millisecond)
		if after, err = c.Metrics(ctx); err != nil {
			fail("fetch metrics: %v", err)
		}
	}
	fmt.Printf("  server cross-check (/api/v1/metrics):\n")
	mismatches := 0
	for _, endpoint := range workloadEndpoints {
		clientN := rep.Endpoints[endpoint].Requests
		if clientN == 0 {
			continue
		}
		route := routeFor[endpoint]
		serverN := after.Routes[route].Count - before.Routes[route].Count
		mark := "ok"
		if clientN != serverN {
			mark = "MISMATCH"
			mismatches++
		}
		srvLat := after.Routes[route].Latency
		fmt.Printf("    %-16s client %7d  server %7d  %-8s  server p95 %.1fms p99 %.1fms\n",
			endpoint, clientN, serverN, mark, srvLat.P95MS, srvLat.P99MS)
	}
	fmt.Printf("    sessions created: server %d, live now %d, evicted %d\n",
		after.Sessions.Created-before.Sessions.Created, after.Sessions.Live, after.Sessions.Evicted)

	// Retrieval topology behind the numbers, recorded into the report
	// so BENCH json distinguishes in-process from distributed runs.
	rep.Topology = &loadgen.Topology{
		Distributed: len(after.Search.Backends) > 0,
		Backends:    len(after.Search.Backends),
		Segments:    len(after.Search.Segments),
		Workers:     after.Search.Workers,
	}
	fmt.Printf("    topology: %s\n", rep.Topology)
	// RPC/error counts are differenced against the pre-run snapshot so
	// they describe this run, like the cache counters below (the p95 is
	// the server-lifetime quantile, as on every other latency line).
	beforeBackends := make(map[string]retrieval.BackendSummary, len(before.Search.Backends))
	for _, b := range before.Search.Backends {
		beforeBackends[b.Addr] = b
	}
	for _, b := range after.Search.Backends {
		prev := beforeBackends[b.Addr]
		fmt.Printf("      backend %-24s segments %v  %d rpcs, %d errors, p95 %.1fms\n",
			b.Addr, b.Segments, b.Requests-prev.Requests, b.Errors-prev.Errors, b.Latency.P95MS)
	}

	// Retrieval-engine view of the run: result-cache effectiveness and
	// server-side search latency, differenced against the pre-run
	// snapshot so BENCH json captures this run's before/after.
	srch := searchSummaryFrom(before, after)
	if srch.CacheEnabled {
		fmt.Printf("    search cache: %.1f%% hit ratio this run (%d hits, %d shared, %d misses; %d entries)\n",
			100*srch.CacheHitRatio, srch.CacheHits, srch.CacheShared, srch.CacheMisses, after.Search.Cache.Entries)
	} else {
		fmt.Printf("    search cache: disabled on server\n")
	}
	fmt.Printf("    server search latency: p50 %.1fms p95 %.1fms (run start: p50 %.1fms p95 %.1fms; delta %+.1f/%+.1fms)\n",
		srch.P50AfterMS, srch.P95AfterMS, srch.P50BeforeMS, srch.P95BeforeMS, srch.P50DeltaMS, srch.P95DeltaMS)
	return after, srch, mismatches
}

// routeFor maps loadgen's client-side endpoint labels to the server
// route patterns they exercise.
var routeFor = map[string]string{
	loadgen.EndpointCreateSession: "POST /api/v1/sessions",
	loadgen.EndpointSearch:        "GET /api/v1/search",
	loadgen.EndpointEvents:        "POST /api/v1/events",
	loadgen.EndpointShot:          "GET /api/v1/shots/{id}",
	loadgen.EndpointDeleteSession: "DELETE /api/v1/sessions/{id}",
}

// workloadEndpoints fixes the cross-check print order.
var workloadEndpoints = []string{
	loadgen.EndpointCreateSession, loadgen.EndpointSearch, loadgen.EndpointEvents,
	loadgen.EndpointShot, loadgen.EndpointDeleteSession,
}

// searchSummary condenses the server's retrieval telemetry for one
// run: cache counters differenced against the pre-run snapshot (so an
// already-warm server reports this run's hit ratio, not its
// lifetime's) and the search route's latency quantiles before and
// after. The quantiles themselves are cumulative-histogram reads, so
// the delta is the run's drift of the server-lifetime quantile — the
// before/after pair is what BENCH_*.json trajectories compare.
type searchSummary struct {
	CacheEnabled  bool    `json:"cache_enabled"`
	CacheHits     int64   `json:"cache_hits"`
	CacheMisses   int64   `json:"cache_misses"`
	CacheShared   int64   `json:"cache_shared"`
	CacheHitRatio float64 `json:"cache_hit_ratio"`
	P50BeforeMS   float64 `json:"search_p50_before_ms"`
	P50AfterMS    float64 `json:"search_p50_after_ms"`
	P50DeltaMS    float64 `json:"search_p50_delta_ms"`
	P95BeforeMS   float64 `json:"search_p95_before_ms"`
	P95AfterMS    float64 `json:"search_p95_after_ms"`
	P95DeltaMS    float64 `json:"search_p95_delta_ms"`
}

// searchSummaryFrom differences two metrics snapshots into the run's
// search summary.
func searchSummaryFrom(before, after *client.MetricsSnapshot) searchSummary {
	s := searchSummary{
		CacheEnabled: after.Search.Cache.Enabled,
		CacheHits:    after.Search.Cache.Hits - before.Search.Cache.Hits,
		CacheMisses:  after.Search.Cache.Misses - before.Search.Cache.Misses,
		CacheShared:  after.Search.Cache.Shared - before.Search.Cache.Shared,
	}
	if total := s.CacheHits + s.CacheShared + s.CacheMisses; total > 0 {
		s.CacheHitRatio = float64(s.CacheHits+s.CacheShared) / float64(total)
	}
	searchRoute := routeFor[loadgen.EndpointSearch]
	b, a := before.Routes[searchRoute].Latency, after.Routes[searchRoute].Latency
	s.P50BeforeMS, s.P50AfterMS, s.P50DeltaMS = b.P50MS, a.P50MS, a.P50MS-b.P50MS
	s.P95BeforeMS, s.P95AfterMS, s.P95DeltaMS = b.P95MS, a.P95MS, a.P95MS-b.P95MS
	return s
}

// countMismatches compares client-observed totals with the
// differenced server counters.
func countMismatches(rep *loadgen.Report, before, after *client.MetricsSnapshot) int {
	n := 0
	for _, endpoint := range workloadEndpoints {
		clientN := rep.Endpoints[endpoint].Requests
		if clientN == 0 {
			continue
		}
		route := routeFor[endpoint]
		if clientN != after.Routes[route].Count-before.Routes[route].Count {
			n++
		}
	}
	return n
}

func fail(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "ivrload: "+format+"\n", args...)
	os.Exit(1)
}
