// Command ivrroute is the session-affine front tier: a thin proxy
// that rendezvous-hashes session IDs over N ivrserve replicas sharing
// one session store and one segment tier (internal/router).
//
// Usage:
//
//	ivrroute -replicas http://localhost:8081,http://localhost:8082
//	ivrroute -addr :8080 -replicas ... -probe-interval 500ms
//
// Clients talk to the router exactly as they would to a single
// ivrserve: the /api/v1 surface is unchanged. Every request for a
// session lands on the same replica while it is healthy; when a
// replica dies or drains, its sessions deterministically move to the
// next replica in rendezvous order, which restores them from the
// shared session store (-session-store on each ivrserve).
//
// The router's own /api/v1/healthz aggregates replica liveness and
// /api/v1/metrics reports per-replica request/error/re-route counters.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log/slog"
	"net/http"
	// Registers /debug/pprof on http.DefaultServeMux, served only when
	// -pprof-addr starts the side listener below; the proxy handler is
	// its own mux, so profiling never leaks onto the public address.
	_ "net/http/pprof"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"repro/internal/router"
)

// splitAddrs parses the -replicas list.
func splitAddrs(s string) []string {
	var out []string
	for _, part := range strings.Split(s, ",") {
		if part = strings.TrimSpace(part); part != "" {
			out = append(out, part)
		}
	}
	return out
}

func main() {
	var (
		addr          = flag.String("addr", ":8080", "listen address")
		replicas      = flag.String("replicas", "", "comma-separated ivrserve base URLs (required)")
		probeInterval = flag.Duration("probe-interval", router.DefaultProbeInterval, "health poll cadence")
		probeTimeout  = flag.Duration("probe-timeout", router.DefaultProbeTimeout, "per-probe deadline")
		failThreshold = flag.Int("fail-threshold", router.DefaultFailThreshold, "consecutive probe failures before a replica leaves rotation")
		slowQuery     = flag.Duration("slow-query", 0, "log the span tree of proxied requests slower than this to stderr as JSON (0 disables)")
		pprofAddr     = flag.String("pprof-addr", "", "serve net/http/pprof on this side address (e.g. localhost:6062; empty disables)")
		quiet         = flag.Bool("quiet", false, "suppress routing logs")
		deadline      = flag.Duration("deadline", router.DefaultSearchDeadline, "X-IVR-Deadline budget minted for search requests arriving without one (negative disables minting; inbound budgets are always enforced)")
	)
	flag.Parse()
	startPprof(*pprofAddr)
	if *replicas == "" {
		fail("-replicas is required (e.g. -replicas http://localhost:8081,http://localhost:8082)")
	}

	logger := slog.New(slog.NewTextHandler(os.Stderr, nil))
	if *quiet {
		logger = slog.New(slog.DiscardHandler)
	}
	rt, err := router.New(router.Config{
		Replicas:       splitAddrs(*replicas),
		ProbeInterval:  *probeInterval,
		ProbeTimeout:   *probeTimeout,
		FailThreshold:  *failThreshold,
		SlowQuery:      *slowQuery,
		Logger:         logger,
		SearchDeadline: *deadline,
	})
	if err != nil {
		fail("%v", err)
	}
	defer rt.Close()

	httpSrv := &http.Server{Addr: *addr, Handler: rt}
	fmt.Printf("ivrroute: front tier on %s over %d replicas (%s)\n",
		*addr, len(splitAddrs(*replicas)), *replicas)

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	errc := make(chan error, 1)
	go func() { errc <- httpSrv.ListenAndServe() }()
	select {
	case err := <-errc:
		if err != nil && !errors.Is(err, http.ErrServerClosed) {
			fail("serve: %v", err)
		}
	case <-ctx.Done():
		fmt.Println("ivrroute: shutting down")
		shutdownCtx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		if err := httpSrv.Shutdown(shutdownCtx); err != nil {
			fail("shutdown: %v", err)
		}
	}
}

// startPprof serves net/http/pprof's /debug/pprof endpoints on a
// dedicated side listener so the front tier can be profiled under live
// load (see LOADTEST.md, "Profiling live traffic"). Empty addr
// disables it. Bind to localhost (or firewall the port).
func startPprof(addr string) {
	if addr == "" {
		return
	}
	go func() {
		fmt.Printf("ivrroute: pprof on http://%s/debug/pprof/\n", addr)
		if err := http.ListenAndServe(addr, nil); err != nil {
			fmt.Fprintf(os.Stderr, "ivrroute: pprof listener: %v\n", err)
		}
	}()
}

func fail(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "ivrroute: "+format+"\n", args...)
	os.Exit(1)
}
