// Command ivrsim runs a simulated user study and writes the
// interaction log, the paper's proposed evaluation methodology as a
// shell tool.
//
// Usage:
//
//	ivrsim -out study.jsonl                      # default: 3 users x 6 topics, desktop
//	ivrsim -iface tv -users 5 -iterations 4
//	ivrsim -preset combined -out study.jsonl     # adaptive system under study
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/core"
	"repro/internal/eval"
	"repro/internal/ilog"
	"repro/internal/simulation"
	"repro/internal/synth"
	"repro/internal/ui"
)

func main() {
	var (
		out        = flag.String("out", "study.jsonl", "interaction log output path")
		ifaceName  = flag.String("iface", "desktop", "interface: desktop or tv")
		preset     = flag.String("preset", "combined", "system preset: baseline, profile, implicit, combined")
		users      = flag.Int("users", 3, "number of simulated users")
		topics     = flag.Int("topics", 6, "number of evaluation topics (0 = all)")
		iterations = flag.Int("iterations", 3, "query iterations per session")
		seed       = flag.Int64("seed", 2008, "seed")
		full       = flag.Bool("full", false, "use the full-scale archive")
		runOut     = flag.String("run", "", "also write a TREC run file of final rankings")
		qrelsOut   = flag.String("qrels", "", "also write the matching TREC qrels file")
	)
	flag.Parse()

	iface, err := ui.ByName(*ifaceName)
	if err != nil {
		fail("%v", err)
	}
	cfg, err := core.Preset(*preset)
	if err != nil {
		fail("%v", err)
	}
	archCfg := synth.TinyConfig()
	if *full {
		archCfg = synth.DefaultConfig()
	}
	arch, err := synth.Generate(archCfg, *seed)
	if err != nil {
		fail("generate: %v", err)
	}
	sys, err := core.NewSystemFromCollection(arch.Collection, cfg)
	if err != nil {
		fail("system: %v", err)
	}
	topicSet := arch.Truth.SearchTopics
	if *topics > 0 && *topics < len(topicSet) {
		topicSet = topicSet[:*topics]
	}
	study, err := simulation.RunStudy(arch, sys, iface,
		simulation.MakeUsers(*users), topicSet, *iterations, *seed)
	if err != nil {
		fail("study: %v", err)
	}
	if err := ilog.SaveFile(*out, study.Events); err != nil {
		fail("save: %v", err)
	}
	if *runOut != "" {
		f, err := os.Create(*runOut)
		if err != nil {
			fail("run file: %v", err)
		}
		if err := eval.WriteRun(f, study.ToRun(*preset)); err != nil {
			f.Close()
			fail("run file: %v", err)
		}
		if err := f.Close(); err != nil {
			fail("run file: %v", err)
		}
		fmt.Printf("  run file:   %s\n", *runOut)
	}
	if *qrelsOut != "" {
		f, err := os.Create(*qrelsOut)
		if err != nil {
			fail("qrels file: %v", err)
		}
		if err := eval.WriteQrels(f, study.ToQrels(arch.Truth.Qrels)); err != nil {
			f.Close()
			fail("qrels file: %v", err)
		}
		if err := f.Close(); err != nil {
			fail("qrels file: %v", err)
		}
		fmt.Printf("  qrels file: %s\n", *qrelsOut)
	}
	imp, exp, q := ilog.MeanEventsPerSession(ilog.AnalyzeSessions(study.Events))
	fmt.Printf("study complete: %d sessions, %d events -> %s\n", len(study.Sessions), len(study.Events), *out)
	fmt.Printf("  system:     %s on %s\n", *preset, iface.Name)
	fmt.Printf("  per session: %.1f implicit, %.1f explicit, %.1f queries\n", imp, exp, q)
	fmt.Printf("  MAP first iteration: %.3f   final: %.3f\n", study.MeanFirst.AP, study.MeanFinal.AP)
	fmt.Printf("  mean distinct shots examined: %.1f\n", study.MeanDistinctSeen)
}

func fail(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "ivrsim: "+format+"\n", args...)
	os.Exit(1)
}
