// Command ivrsim runs a simulated user study and writes the
// interaction log, the paper's proposed evaluation methodology as a
// shell tool.
//
// Usage:
//
//	ivrsim -out study.jsonl                      # default: 3 users x 6 topics, desktop
//	ivrsim -iface tv -users 5 -iterations 4
//	ivrsim -preset combined -out study.jsonl     # adaptive system under study
//	ivrsim -server http://localhost:8080         # same study, remotely over /api/v1
//
// With -server the study runs against a live ivrserve instance
// through the SDK (internal/loadgen): sessions execute concurrently
// over HTTP, rankings are evaluated from the fetched pages, and a
// per-endpoint latency report accompanies the retrieval metrics. The
// server must serve the same archive (-seed/-full) for the topic
// ground truth to apply; -preset is the server's choice in that mode.
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"syscall"
	"time"

	"repro/internal/client"
	"repro/internal/core"
	"repro/internal/eval"
	"repro/internal/ilog"
	"repro/internal/loadgen"
	"repro/internal/simulation"
	"repro/internal/synth"
	"repro/internal/ui"
)

func main() {
	var (
		out        = flag.String("out", "study.jsonl", "interaction log output path")
		ifaceName  = flag.String("iface", "desktop", "interface: desktop or tv")
		preset     = flag.String("preset", "combined", "system preset: baseline, profile, implicit, combined")
		users      = flag.Int("users", 3, "number of simulated users")
		topics     = flag.Int("topics", 6, "number of evaluation topics (0 = all)")
		iterations = flag.Int("iterations", 3, "query iterations per session")
		seed       = flag.Int64("seed", 2008, "seed")
		full       = flag.Bool("full", false, "use the full-scale archive")
		runOut     = flag.String("run", "", "also write a TREC run file of final rankings")
		qrelsOut   = flag.String("qrels", "", "also write the matching TREC qrels file")
		server     = flag.String("server", "", "run the study remotely against this /api/v1 server")
		workers    = flag.Int("workers", 8, "concurrent sessions in -server mode")
	)
	flag.Parse()

	iface, err := ui.ByName(*ifaceName)
	if err != nil {
		fail("%v", err)
	}
	archCfg := synth.TinyConfig()
	if *full {
		archCfg = synth.DefaultConfig()
	}
	arch, err := synth.Generate(archCfg, *seed)
	if err != nil {
		fail("generate: %v", err)
	}
	topicSet := arch.Truth.SearchTopics
	if *topics > 0 && *topics < len(topicSet) {
		topicSet = topicSet[:*topics]
	}
	if *server != "" {
		runRemote(*server, *workers, arch, iface, topicSet, *users, *iterations, *seed,
			*out, *runOut, *qrelsOut)
		return
	}
	cfg, err := core.Preset(*preset)
	if err != nil {
		fail("%v", err)
	}
	sys, err := core.NewSystemFromCollection(arch.Collection, cfg)
	if err != nil {
		fail("system: %v", err)
	}
	study, err := simulation.RunStudy(arch, sys, iface,
		simulation.MakeUsers(*users), topicSet, *iterations, *seed)
	if err != nil {
		fail("study: %v", err)
	}
	if err := ilog.SaveFile(*out, study.Events); err != nil {
		fail("save: %v", err)
	}
	if *runOut != "" {
		writeRunFile(*runOut, study.ToRun(*preset))
	}
	if *qrelsOut != "" {
		writeQrelsFile(*qrelsOut, study.ToQrels(arch.Truth.Qrels))
	}
	imp, exp, q := ilog.MeanEventsPerSession(ilog.AnalyzeSessions(study.Events))
	fmt.Printf("study complete: %d sessions, %d events -> %s\n", len(study.Sessions), len(study.Events), *out)
	fmt.Printf("  system:     %s on %s\n", *preset, iface.Name)
	fmt.Printf("  per session: %.1f implicit, %.1f explicit, %.1f queries\n", imp, exp, q)
	fmt.Printf("  MAP first iteration: %.3f   final: %.3f\n", study.MeanFirst.AP, study.MeanFinal.AP)
	fmt.Printf("  mean distinct shots examined: %.1f\n", study.MeanDistinctSeen)
}

// writeRunFile / writeQrelsFile export TREC files for both study
// modes.
func writeRunFile(path string, run *eval.Run) {
	f, err := os.Create(path)
	if err != nil {
		fail("run file: %v", err)
	}
	if err := eval.WriteRun(f, run); err != nil {
		f.Close()
		fail("run file: %v", err)
	}
	if err := f.Close(); err != nil {
		fail("run file: %v", err)
	}
	fmt.Printf("  run file:   %s\n", path)
}

func writeQrelsFile(path string, qs eval.QrelSet) {
	f, err := os.Create(path)
	if err != nil {
		fail("qrels file: %v", err)
	}
	if err := eval.WriteQrels(f, qs); err != nil {
		f.Close()
		fail("qrels file: %v", err)
	}
	if err := f.Close(); err != nil {
		fail("qrels file: %v", err)
	}
	fmt.Printf("  qrels file: %s\n", path)
}

// runRemote replays the same (user, topic) study through the SDK
// against a live server — the paper's simulated methodology as a
// closed-loop HTTP workload.
func runRemote(server string, workers int, arch *synth.Archive, iface *ui.Interface,
	topicSet []*synth.SearchTopic, users, iterations int, seed int64,
	out, runOut, qrelsOut string) {

	c, err := client.New(server, client.WithTimeout(30*time.Second), client.WithUserAgent("ivrsim/1"))
	if err != nil {
		fail("%v", err)
	}
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	if _, err := c.Healthz(ctx); err != nil {
		fail("server %s not healthy: %v", server, err)
	}
	pairs := simulation.AllPairs(simulation.MakeUsers(users), topicSet)
	res, err := loadgen.RunStudy(ctx, loadgen.StudyConfig{
		Client:     c,
		Workers:    workers,
		Iterations: iterations,
		Iface:      iface,
		Qrels:      arch.Truth.Qrels,
		Seed:       seed,
	}, pairs)
	if err != nil {
		fail("remote study: %v", err)
	}
	if err := ilog.SaveFile(out, res.Events); err != nil {
		fail("save: %v", err)
	}
	if runOut != "" {
		writeRunFile(runOut, res.ToRun("remote"))
	}
	if qrelsOut != "" {
		writeQrelsFile(qrelsOut, res.ToQrels(arch.Truth.Qrels))
	}
	imp, exp, q := ilog.MeanEventsPerSession(ilog.AnalyzeSessions(res.Events))
	fmt.Printf("remote study complete: %d sessions (%d failed, %d aborted), %d events -> %s\n",
		len(res.Sessions), res.Failed, res.Aborted, len(res.Events), out)
	fmt.Printf("  server:     %s on %s (%d workers)\n", server, iface.Name, workers)
	fmt.Printf("  per session: %.1f implicit, %.1f explicit, %.1f queries\n", imp, exp, q)
	fmt.Printf("  MAP first iteration: %.3f   final: %.3f\n", res.MeanFirst.AP, res.MeanFinal.AP)
	fmt.Print(res.Report)
	if res.Failed > 0 {
		fail("%d sessions failed", res.Failed)
	}
}

func fail(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "ivrsim: "+format+"\n", args...)
	os.Exit(1)
}
