// Command ivrgen generates a synthetic news-video archive to disk: the
// collection index (binary, checksummed), the search topics and qrels
// (TREC-style text files), and a summary.
//
// Usage:
//
//	ivrgen -out ./archive                  # default month-scale archive
//	ivrgen -out ./archive -days 10 -wer 0.3 -seed 7
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strings"

	"repro/internal/core"
	"repro/internal/store"
	"repro/internal/synth"
	"repro/internal/text"
)

func main() {
	var (
		outDir = flag.String("out", "archive", "output directory")
		days   = flag.Int("days", 0, "override broadcast days")
		wer    = flag.Float64("wer", -1, "override ASR word error rate")
		topics = flag.Int("topics", 0, "override number of search topics")
		seed   = flag.Int64("seed", 2008, "generation seed")
		tiny   = flag.Bool("tiny", false, "use the tiny test-scale configuration")
	)
	flag.Parse()

	cfg := synth.DefaultConfig()
	if *tiny {
		cfg = synth.TinyConfig()
	}
	if *days > 0 {
		cfg.Days = *days
	}
	if *wer >= 0 {
		cfg.WER = *wer
	}
	if *topics > 0 {
		cfg.NumSearchTopics = *topics
	}
	arch, err := synth.Generate(cfg, *seed)
	if err != nil {
		fail("generate: %v", err)
	}
	if err := os.MkdirAll(*outDir, 0o755); err != nil {
		fail("mkdir: %v", err)
	}
	// Full archive container (collection + ground truth).
	arcPath := filepath.Join(*outDir, "archive.ivrarc")
	if err := store.Save(arcPath, arch); err != nil {
		fail("save archive: %v", err)
	}
	// Index.
	an := text.NewAnalyzer()
	ix, err := core.BuildIndex(arch.Collection, an)
	if err != nil {
		fail("index: %v", err)
	}
	idxPath := filepath.Join(*outDir, "archive.ivridx")
	if err := ix.Save(idxPath); err != nil {
		fail("save index: %v", err)
	}
	// Topics file.
	var topicsSB strings.Builder
	for _, st := range arch.Truth.SearchTopics {
		fmt.Fprintf(&topicsSB, "%d\t%s\t%s\t%s\n", st.ID, st.Category, st.Query, st.Verbose)
	}
	if err := os.WriteFile(filepath.Join(*outDir, "topics.tsv"), []byte(topicsSB.String()), 0o644); err != nil {
		fail("write topics: %v", err)
	}
	// Qrels file (TREC format: topic 0 doc grade).
	var qrelsSB strings.Builder
	topicIDs := make([]int, 0, len(arch.Truth.Qrels))
	for id := range arch.Truth.Qrels {
		topicIDs = append(topicIDs, id)
	}
	sort.Ints(topicIDs)
	for _, tid := range topicIDs {
		for _, shot := range arch.Truth.Qrels.Relevant(tid, 1) {
			fmt.Fprintf(&qrelsSB, "%d 0 %s %d\n", tid, shot, arch.Truth.Qrels.Grade(tid, shot))
		}
	}
	if err := os.WriteFile(filepath.Join(*outDir, "qrels.txt"), []byte(qrelsSB.String()), 0o644); err != nil {
		fail("write qrels: %v", err)
	}
	stats := arch.Collection.ComputeStats()
	fmt.Printf("archive written to %s\n", *outDir)
	fmt.Printf("  container: %s\n", arcPath)
	fmt.Printf("  videos:  %d\n", stats.Videos)
	fmt.Printf("  stories: %d\n", stats.Stories)
	fmt.Printf("  shots:   %d (mean %.1fs, %.1f transcript terms)\n",
		stats.Shots, stats.MeanShotSeconds, stats.MeanTranscriptTerms)
	fmt.Printf("  topics:  %d with qrels\n", len(arch.Truth.SearchTopics))
	fmt.Printf("  index:   %s (%d docs, %d text terms)\n",
		idxPath, ix.NumDocs(), ix.NumTerms(0))
}

func fail(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "ivrgen: "+format+"\n", args...)
	os.Exit(1)
}
