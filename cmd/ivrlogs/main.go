// Command ivrlogs analyses interaction logs: per-indicator statistics,
// per-session volumes, and dwell-time distribution — the logfile
// analysis step of the paper's methodology. When the log came from a
// known archive seed, relevance-aware statistics (indicator precision)
// are computed against the regenerated qrels.
//
// Usage:
//
//	ivrlogs -log study.jsonl                  # volumes only
//	ivrlogs -log study.jsonl -seed 2008       # + indicator precision vs qrels
//	ivrlogs -log study.jsonl -seed 2008 -full # full-scale archive ground truth
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/collection"
	"repro/internal/ilog"
	"repro/internal/store"
	"repro/internal/synth"
)

func main() {
	var (
		logPath  = flag.String("log", "study.jsonl", "interaction log (JSONL)")
		seed     = flag.Int64("seed", 0, "archive seed for ground-truth relevance (0 = skip)")
		full     = flag.Bool("full", false, "ground-truth archive is full-scale")
		archPath = flag.String("archive", "", "saved archive container (.ivrarc) for ground truth")
	)
	flag.Parse()

	events, err := ilog.LoadFile(*logPath)
	if err != nil {
		fail("%v", err)
	}
	fmt.Printf("%d events in %s\n\n", len(events), *logPath)

	// Session volumes.
	sessions := ilog.AnalyzeSessions(events)
	imp, exp, q := ilog.MeanEventsPerSession(sessions)
	fmt.Printf("sessions: %d  (per session: %.1f implicit, %.1f explicit, %.1f queries)\n\n",
		len(sessions), imp, exp, q)

	var oracle ilog.RelevanceOracle
	var arch *synth.Archive
	switch {
	case *archPath != "":
		arch, err = store.Load(*archPath)
		if err != nil {
			fail("load archive: %v", err)
		}
	case *seed != 0:
		cfg := synth.TinyConfig()
		if *full {
			cfg = synth.DefaultConfig()
		}
		arch, err = synth.Generate(cfg, *seed)
		if err != nil {
			fail("regenerate archive: %v", err)
		}
	}
	if arch != nil {
		oracle = func(topicID int, shotID string) bool {
			return arch.Truth.Qrels.Grade(topicID, collection.ShotID(shotID)) >= 1
		}
	}

	fmt.Println("per-indicator statistics:")
	fmt.Printf("%-16s %8s %8s %10s %10s %9s\n", "action", "events", "on-rel", "precision", "mean-sec", "mean-rank")
	for _, st := range ilog.AnalyzeIndicators(events, oracle) {
		fmt.Printf("%-16s %8d %8d %10.3f %10.2f %9.2f\n",
			st.Action, st.Count, st.OnRelevant, st.Precision, st.MeanSeconds, st.MeanRank)
	}
	if oracle == nil {
		fmt.Println("(pass -seed to compute precision against regenerated qrels)")
	}

	// Dwell distribution.
	buckets, err := ilog.DwellAnalysis(events, oracle, []float64{0, 2, 5, 10, 20, 60, 1e9})
	if err != nil {
		fail("dwell: %v", err)
	}
	fmt.Println("\ndwell-time distribution (play events):")
	for _, b := range buckets {
		hi := fmt.Sprintf("%gs", b.Hi)
		if b.Hi >= 1e9 {
			hi = "inf"
		}
		fmt.Printf("  [%4gs, %5s)  %6d plays   precision %.3f\n", b.Lo, hi, b.Count, b.Precision)
	}
}

func fail(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "ivrlogs: "+format+"\n", args...)
	os.Exit(1)
}
