// Command ivrserve hosts the adaptive retrieval system as an HTTP/JSON
// service — the backend a desktop or iTV front-end would talk to.
//
// Usage:
//
//	ivrserve                                  # tiny archive on :8080
//	ivrserve -addr :9090 -preset combined -full
//	ivrserve -archive archive.ivrarc          # serve a saved archive
//
// Example exchange:
//
//	curl -s -X POST localhost:8080/api/sessions \
//	     -d '{"user_id":"alice","interests":{"sports":0.9}}'
//	curl -s 'localhost:8080/api/search?session=s1&q=cup+final'
//	curl -s -X POST localhost:8080/api/events -d '{"session_id":"s1",
//	     "events":[{"action":"click_keyframe","shot":"v0001_s003","rank":0,
//	                "session":"s1","t":"2008-01-01T12:00:00Z","topic":-1}]}'
package main

import (
	"flag"
	"fmt"
	"log"
	"net/http"
	"os"

	"repro/internal/core"
	"repro/internal/store"
	"repro/internal/synth"
	"repro/internal/webapi"
)

func main() {
	var (
		addr     = flag.String("addr", ":8080", "listen address")
		preset   = flag.String("preset", "combined", "system preset: baseline, profile, implicit, combined")
		archPath = flag.String("archive", "", "saved archive (.ivrarc) to serve; default generates one")
		seed     = flag.Int64("seed", 2008, "generation seed when no -archive is given")
		full     = flag.Bool("full", false, "generate the full-scale archive")
	)
	flag.Parse()

	cfg, err := core.Preset(*preset)
	if err != nil {
		fail("%v", err)
	}
	var arch *synth.Archive
	if *archPath != "" {
		arch, err = store.Load(*archPath)
		if err != nil {
			fail("load archive: %v", err)
		}
	} else {
		acfg := synth.TinyConfig()
		if *full {
			acfg = synth.DefaultConfig()
		}
		arch, err = synth.Generate(acfg, *seed)
		if err != nil {
			fail("generate: %v", err)
		}
	}
	sys, err := core.NewSystemFromCollection(arch.Collection, cfg)
	if err != nil {
		fail("system: %v", err)
	}
	srv, err := webapi.NewServer(sys)
	if err != nil {
		fail("server: %v", err)
	}
	fmt.Printf("ivrserve: %s system over %d shots, listening on %s\n",
		*preset, arch.Collection.NumShots(), *addr)
	log.Fatal(http.ListenAndServe(*addr, srv.Handler()))
}

func fail(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "ivrserve: "+format+"\n", args...)
	os.Exit(1)
}
