// Command ivrserve hosts the adaptive retrieval system as a versioned
// HTTP/JSON service — the backend a desktop or iTV front-end talks to
// via /api/v1 (see internal/webapi for the route table and
// internal/client for the typed Go SDK).
//
// Usage:
//
//	ivrserve                                  # tiny archive on :8080
//	ivrserve -addr :9090 -preset combined -full
//	ivrserve -archive archive.ivrarc          # serve a saved archive
//	ivrserve -session-ttl 30m -max-sessions 10000
//	ivrserve -segments 8 -search-cache 65536  # fan-out + result cache sizing
//	ivrserve -segment-addrs http://h1:8091,http://h2:8092
//	                                          # distributed: scatter/gather over
//	                                          # remote ivrsegment processes
//	ivrserve -segment-addrs 'http://h1a:8091|http://h1b:8091,http://h2a:8092|http://h2b:8092'
//	                                          # replicated: | joins twin replicas of
//	                                          # one group; failed RPCs fail over
//	ivrserve -topology topo.json -topology-watch 2s -hedge-after 30ms -probe-interval 2s
//	                                          # replica topology from a descriptor
//	                                          # file, hot-reloaded on change (or via
//	                                          # POST /api/v1/admin/topology), slow
//	                                          # RPCs hedged to the twin
//	ivrserve -session-store sessions.jnl -replica-id r1
//	                                          # durable sessions: write-through to a
//	                                          # crash-safe journal, shareable with
//	                                          # sibling replicas behind ivrroute
//
// Example exchange:
//
//	curl -s -X POST localhost:8080/api/v1/sessions \
//	     -d '{"user_id":"alice","interests":{"sports":0.9}}'
//	curl -s 'localhost:8080/api/v1/search?session=SID&q=cup+final&limit=5'
//	curl -s 'localhost:8080/api/v1/search/stream?session=SID&q=cup+final'
//	curl -s -X POST localhost:8080/api/v1/events -d '{"session_id":"SID",
//	     "events":[{"action":"click_keyframe","shot":"v0001_s003","rank":0,
//	                "session":"SID","t":"2008-01-01T12:00:00Z","topic":-1}]}'
//
// Unversioned /api/... paths answer 308 redirects to /api/v1.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log/slog"
	"net/http"
	// Registers /debug/pprof on http.DefaultServeMux, served only when
	// -pprof-addr starts the side listener below; the API mux is its
	// own ServeMux, so profiling never leaks onto the public address.
	_ "net/http/pprof"
	"os"
	"os/signal"
	"runtime"
	"syscall"
	"time"

	"repro/internal/core"
	"repro/internal/distrib"
	"repro/internal/metrics"
	"repro/internal/retrieval"
	"repro/internal/sessionstore"
	"repro/internal/store"
	"repro/internal/synth"
	"repro/internal/webapi"
)

func main() {
	var (
		addr        = flag.String("addr", ":8080", "listen address")
		preset      = flag.String("preset", "combined", "system preset: baseline, profile, implicit, combined")
		archPath    = flag.String("archive", "", "saved archive (.ivrarc) to serve; default generates one")
		seed        = flag.Int64("seed", 2008, "generation seed when no -archive is given")
		full        = flag.Bool("full", false, "generate the full-scale archive")
		depth       = flag.Int("depth", 200, "ranking depth per query (bounds search pagination)")
		sessionTTL  = flag.Duration("session-ttl", 30*time.Minute, "evict sessions idle this long (0 disables)")
		maxSessions = flag.Int("max-sessions", 0, "cap on live sessions (0 = unbounded)")
		segments    = flag.Int("segments", 0, "index segments scored in parallel (0 = one per CPU, 1 = sequential)")
		searchCache = flag.Int("search-cache", 4096, "evidence-keyed result cache entries (0 disables)")
		segAddrs    = flag.String("segment-addrs", "", "comma-separated ivrsegment base URLs; | joins replicas of one group ('http://a|http://a2,http://b'); enables the distributed scatter/gather tier")
		topoPath    = flag.String("topology", "", "replica topology descriptor file (JSON; see LOADTEST.md); alternative to -segment-addrs")
		topoWatch   = flag.Duration("topology-watch", 2*time.Second, "poll the -topology file for changes this often and hot-reload it (0 disables)")
		segTimeout  = flag.Duration("segment-timeout", distrib.DefaultRPCTimeout, "per-segment RPC deadline in distributed mode")
		hedgeAfter  = flag.Duration("hedge-after", 0, "hedge a segment RPC to a twin replica after this latency budget (0 disables)")
		probeEvery  = flag.Duration("probe-interval", 2*time.Second, "health-probe replicas this often in replicated mode (0 disables)")
		rpcCodec    = flag.String("rpc-codec", "binary", "segment search body codec: binary (negotiated, falls back per backend) or json (forced)")
		pprofAddr   = flag.String("pprof-addr", "", "serve net/http/pprof on this side address (e.g. localhost:6060; empty disables)")
		slowQuery   = flag.Duration("slow-query", 0, "log the span tree of requests slower than this to stderr as JSON (0 disables)")
		quiet       = flag.Bool("quiet", false, "suppress per-request logs")
		sessStore   = flag.String("session-store", "", "journal file for durable sessions (empty = in-memory only); share one path between replicas behind ivrroute")
		sessSync    = flag.Duration("session-sync", 100*time.Millisecond, "journal fsync batching interval (0 = fsync every write)")
		replicaID   = flag.String("replica-id", "", "replica name stamped on responses (X-IVR-Replica) and reported to the front tier")
		admitLimit  = flag.Int("admission-limit", 0, "max concurrent searches before typed 429 sheds (0 = effectively unbounded gate, telemetry only)")
		admitQueue  = flag.Int("admission-queue", 0, "admission queue depth absorbing bursts before shedding (0 = half the limit)")
		admitTarget = flag.Duration("admission-target", 0, "AIMD latency target: cut the admission limit when queue waits exceed this (0 disables adaptation)")
		retryRatio  = flag.Float64("retry-budget", 0.1, "hedge/failover token earn rate per primary segment RPC (0 = unlimited)")
		retryBurst  = flag.Int("retry-burst", 64, "hedge/failover token bucket burst capacity")
		brkFails    = flag.Int("breaker-failures", 5, "consecutive RPC failures that trip a replica's circuit breaker open (0 disables breakers)")
		brkCooldown = flag.Duration("breaker-cooldown", 5*time.Second, "how long an open breaker waits before probing half-open")
		degraded    = flag.Bool("degraded", true, "distributed mode: answer partial (degraded) pages from the segments that responded instead of failing the whole query")
	)
	flag.Parse()
	startPprof(*pprofAddr)

	cfg, err := core.Preset(*preset)
	if err != nil {
		fail("%v", err)
	}
	cfg.K = *depth
	if *segments < 0 || *searchCache < 0 {
		fail("-segments and -search-cache must be >= 0")
	}
	cfg.Segments = *segments
	if cfg.Segments == 0 {
		cfg.Segments = runtime.GOMAXPROCS(0)
	}
	cfg.CacheSize = *searchCache
	var arch *synth.Archive
	if *archPath != "" {
		arch, err = store.Load(*archPath)
		if err != nil {
			fail("load archive: %v", err)
		}
	} else {
		acfg := synth.TinyConfig()
		if *full {
			acfg = synth.DefaultConfig()
		}
		arch, err = synth.Generate(acfg, *seed)
		if err != nil {
			fail("generate: %v", err)
		}
	}
	// Single-process by default; -segment-addrs swaps the local index
	// for the scatter/gather merge tier over remote ivrsegment
	// processes. The result cache, session manager and /api/v1 surface
	// are identical either way — and so are the rankings, which is
	// what the distributed parity tests pin.
	var sys *core.System
	var cluster *distrib.Cluster
	if *segAddrs != "" || *topoPath != "" {
		if *segAddrs != "" && *topoPath != "" {
			fail("-segment-addrs and -topology are mutually exclusive")
		}
		var desc *distrib.TopologyDesc
		if *topoPath != "" {
			data, rerr := os.ReadFile(*topoPath)
			if rerr != nil {
				fail("read topology: %v", rerr)
			}
			desc, err = distrib.ParseTopology(data)
			if err != nil {
				fail("topology %s: %v", *topoPath, err)
			}
		} else {
			desc, err = distrib.ParseAddrGroups(*segAddrs)
			if err != nil {
				fail("-segment-addrs: %v", err)
			}
		}
		opts := []distrib.Option{
			distrib.WithTimeout(*segTimeout),
			distrib.WithHedge(*hedgeAfter),
			distrib.WithProbeInterval(*probeEvery),
			distrib.WithRetryBudget(*retryRatio, *retryBurst),
			distrib.WithBreaker(*brkFails, *brkCooldown),
		}
		if *degraded {
			opts = append(opts, distrib.WithDegraded())
		}
		switch *rpcCodec {
		case "binary":
		case "json":
			opts = append(opts, distrib.WithJSONCodec())
		default:
			fail("unknown -rpc-codec %q (binary or json)", *rpcCodec)
		}
		ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
		cluster, err = distrib.ConnectTopology(ctx, desc, opts...)
		cancel()
		if err != nil {
			fail("connect segment servers: %v", err)
		}
		defer cluster.Close()
		if cluster.NumDocs() != arch.Collection.NumShots() {
			fail("segment servers index %d shots, local archive has %d (mismatched -seed/-full/-archive?)",
				cluster.NumDocs(), arch.Collection.NumShots())
		}
		// Scores come from the backends while shot metadata and query
		// expansion read the local collection — refuse to mix archives
		// (same shot count or even same IDs is not enough).
		if cluster.SourceHash() != distrib.CollectionSourceHash(arch.Collection) {
			fail("segment servers were built from a different archive than this server's (mismatched -seed/-full/-archive)")
		}
		// Scatter every segment RPC of a query concurrently: remote
		// scoring is IO-bound, so the worker bound is the segment
		// count, not the CPU count.
		sys, err = core.NewSystem(cluster.NewEngine(nil, cluster.NumSegments()), arch.Collection, cfg)
		if err == nil {
			sys.SetBackendTelemetry(cluster.BackendSummaries)
			sys.SetRetryBudgetTelemetry(func() retrieval.RetryBudgetSummary {
				st := cluster.RetryBudget()
				return retrieval.RetryBudgetSummary{
					Tokens: st.Tokens, Taken: st.Taken, Denied: st.Denied, Unlimited: st.Unlimited,
				}
			})
		}
	} else {
		sys, err = core.NewSystemFromCollection(arch.Collection, cfg)
	}
	if err != nil {
		fail("system: %v", err)
	}
	logger := slog.New(slog.NewTextHandler(os.Stderr, nil))
	if *quiet {
		logger = slog.New(slog.DiscardHandler)
	}
	opts := []webapi.Option{
		webapi.WithLogger(logger),
		webapi.WithSessionTTL(*sessionTTL),
		webapi.WithMaxSessions(*maxSessions),
		webapi.WithReplicaID(*replicaID),
		webapi.WithSlowQuery(*slowQuery),
	}
	if *admitLimit > 0 {
		queue := *admitQueue
		if queue <= 0 {
			queue = *admitLimit / 2
		}
		opts = append(opts, webapi.WithAdmission(metrics.AdmissionConfig{
			InitialLimit: *admitLimit,
			MaxQueue:     queue,
			Target:       *admitTarget,
		}))
	}
	if cluster != nil {
		// Live topology administration: GET/POST /api/v1/admin/topology,
		// plus hot-reload of the descriptor file when one was given.
		opts = append(opts, webapi.WithTopologyAdmin(cluster))
		if *topoPath != "" && *topoWatch > 0 {
			stopWatch := cluster.WatchTopologyFile(*topoPath, *topoWatch, func(format string, args ...any) {
				fmt.Fprintf(os.Stderr, "ivrserve: "+format+"\n", args...)
			})
			defer stopWatch()
		}
	}
	// -session-store makes sessions durable: every touched session is
	// written through to a crash-safe journal, so a restart (or a
	// sibling replica sharing the path) resumes mid-study sessions
	// with bit-identical evidence state.
	var journal *sessionstore.JournalStore
	if *sessStore != "" {
		journal, err = sessionstore.OpenJournal(*sessStore, sessionstore.WithSyncInterval(*sessSync))
		if err != nil {
			fail("open session store: %v", err)
		}
		defer journal.Close()
		opts = append(opts, webapi.WithSessionStore(journal))
	}
	srv, err := webapi.NewServer(sys, opts...)
	if err != nil {
		fail("server: %v", err)
	}
	defer srv.Close()

	httpSrv := &http.Server{Addr: *addr, Handler: srv.Handler()}
	if cluster != nil {
		fmt.Printf("ivrserve: %s system over %d shots, /api/v1 on %s (session ttl %s, %d remote segments over %d backends, cache %d)\n",
			*preset, arch.Collection.NumShots(), *addr, *sessionTTL, cluster.NumSegments(), len(cluster.Backends()), cfg.CacheSize)
	} else {
		fmt.Printf("ivrserve: %s system over %d shots, /api/v1 on %s (session ttl %s, %d index segments, cache %d)\n",
			*preset, arch.Collection.NumShots(), *addr, *sessionTTL, cfg.Segments, cfg.CacheSize)
	}

	// Serve until SIGINT/SIGTERM, then drain in-flight requests.
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	errc := make(chan error, 1)
	go func() { errc <- httpSrv.ListenAndServe() }()
	select {
	case err := <-errc:
		if err != nil && !errors.Is(err, http.ErrServerClosed) {
			fail("serve: %v", err)
		}
	case <-ctx.Done():
		// Drain first: new session work answers 503 + Retry-After (so a
		// front tier re-routes immediately) and every live session is
		// flushed to the store — then let in-flight requests finish.
		fmt.Println("ivrserve: shutting down")
		if flushed, err := srv.BeginDrain(); err != nil {
			fmt.Fprintf(os.Stderr, "ivrserve: drain: %v\n", err)
		} else if journal != nil {
			fmt.Printf("ivrserve: drained, %d sessions flushed to %s\n", flushed, *sessStore)
		}
		shutdownCtx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		if err := httpSrv.Shutdown(shutdownCtx); err != nil {
			fail("shutdown: %v", err)
		}
	}
}

// startPprof serves net/http/pprof's /debug/pprof endpoints on a
// dedicated side listener so live traffic can be profiled (see
// LOADTEST.md, "Profiling live traffic"). Empty addr disables it.
// Bind to localhost (or firewall the port): profiles expose internals.
func startPprof(addr string) {
	if addr == "" {
		return
	}
	go func() {
		fmt.Printf("ivrserve: pprof on http://%s/debug/pprof/\n", addr)
		if err := http.ListenAndServe(addr, nil); err != nil {
			fmt.Fprintf(os.Stderr, "ivrserve: pprof listener: %v\n", err)
		}
	}()
}

func fail(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "ivrserve: "+format+"\n", args...)
	os.Exit(1)
}
