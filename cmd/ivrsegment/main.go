// Command ivrsegment hosts index segments as a standalone process
// behind the /rpc/v1 segment RPC surface — the storage/scoring tier of
// the distributed topology. An ivrserve merge tier started with
// -segment-addrs scatters queries over a set of ivrsegment processes
// and gathers their partial top-k lists; rankings are bit-identical to
// a single-process ivrserve over the same archive.
//
// Every ivrsegment of one topology must be started from the same
// archive (same -archive, or same -seed/-full) and the same -segments
// count; the merge tier verifies both via a collection hash before
// serving. -host picks which segment ordinals this process scores, so
// a 4-segment topology can be split 2x2:
//
//	ivrsegment -addr :8091 -segments 4 -host 0,1
//	ivrsegment -addr :8092 -segments 4 -host 2,3
//	ivrserve   -segment-addrs http://localhost:8091,http://localhost:8092
//
// Replication is the same recipe run twice: start a second ivrsegment
// with identical -segments/-host arguments on another port and list it
// as a `|`-separated twin (or as another entry in the group's replicas
// array of a -topology descriptor). The merge tier health-probes the
// twins, fails over on error, and optionally hedges slow RPCs:
//
//	ivrsegment -addr :8093 -segments 4 -host 0,1   # twin of :8091
//	ivrsegment -addr :8094 -segments 4 -host 2,3   # twin of :8092
//	ivrserve   -segment-addrs 'http://localhost:8091|http://localhost:8093,http://localhost:8092|http://localhost:8094'
//
// Routes (all JSON; errors use the /api/v1 envelope):
//
//	GET  /rpc/v1/stats     topology + full per-term statistics
//	POST /rpc/v1/search    score one hosted segment
//	GET  /rpc/v1/healthz   liveness
//	GET  /rpc/v1/metrics   per-route telemetry snapshot (?format=prometheus for text exposition)
//	GET  /metrics          Prometheus text exposition alias for scrapers
//	GET  /rpc/v1/debug/traces  recent span trees from the trace ring
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log/slog"
	"net/http"
	// Registers /debug/pprof on http.DefaultServeMux, served only when
	// -pprof-addr starts the side listener below; the RPC mux is its
	// own ServeMux, so profiling never leaks onto the public address.
	_ "net/http/pprof"
	"os"
	"os/signal"
	"strconv"
	"strings"
	"syscall"
	"time"

	"repro/internal/core"
	"repro/internal/distrib"
	"repro/internal/metrics"
	"repro/internal/store"
	"repro/internal/synth"
)

func main() {
	var (
		addr      = flag.String("addr", ":8091", "listen address")
		archPath  = flag.String("archive", "", "saved archive (.ivrarc) to index; default generates one")
		seed      = flag.Int64("seed", 2008, "generation seed when no -archive is given")
		full      = flag.Bool("full", false, "generate the full-scale archive")
		segments  = flag.Int("segments", 2, "total segment count of the topology (same on every server)")
		host      = flag.String("host", "", "comma-separated segment ordinals to host (default: all)")
		pprofAddr = flag.String("pprof-addr", "", "serve net/http/pprof on this side address (e.g. localhost:6061; empty disables)")
		slowQuery = flag.Duration("slow-query", 0, "log the span tree of segment RPCs slower than this to stderr as JSON (0 disables)")
		quiet     = flag.Bool("quiet", false, "suppress per-request logs")

		admitLimit  = flag.Int("admission-limit", 0, "max concurrent segment searches before typed 429 sheds (0 = effectively unbounded gate, telemetry only)")
		admitQueue  = flag.Int("admission-queue", 0, "admission queue depth absorbing bursts before shedding (0 = half the limit)")
		admitTarget = flag.Duration("admission-target", 0, "AIMD latency target: cut the admission limit when queue waits exceed this (0 disables adaptation)")
	)
	flag.Parse()
	startPprof(*pprofAddr)

	if *segments < 1 {
		fail("-segments must be >= 1")
	}
	hosted, err := parseOrdinals(*host)
	if err != nil {
		fail("%v", err)
	}
	var arch *synth.Archive
	if *archPath != "" {
		arch, err = store.Load(*archPath)
		if err != nil {
			fail("load archive: %v", err)
		}
	} else {
		acfg := synth.TinyConfig()
		if *full {
			acfg = synth.DefaultConfig()
		}
		arch, err = synth.Generate(acfg, *seed)
		if err != nil {
			fail("generate: %v", err)
		}
	}
	sh, err := core.BuildShardedIndex(arch.Collection, nil, *segments)
	if err != nil {
		fail("index: %v", err)
	}
	logger := slog.New(slog.NewTextHandler(os.Stderr, nil))
	if *quiet {
		logger = slog.New(slog.DiscardHandler)
	}
	scfg := distrib.ServerConfig{
		Sharded:    sh,
		Hosted:     hosted,
		SourceHash: distrib.CollectionSourceHash(arch.Collection),
		SlowQuery:  *slowQuery,
		Logger:     logger,
	}
	if *admitLimit > 0 {
		queue := *admitQueue
		if queue <= 0 {
			queue = *admitLimit / 2
		}
		scfg.Admission = metrics.AdmissionConfig{
			InitialLimit: *admitLimit,
			MaxQueue:     queue,
			Target:       *admitTarget,
		}
	}
	srv, err := distrib.NewSegmentServer(scfg)
	if err != nil {
		fail("server: %v", err)
	}

	httpSrv := &http.Server{Addr: *addr, Handler: srv.Handler()}
	fmt.Printf("ivrsegment: hosting segments %v of %d (%d shots total), /rpc/v1 on %s\n",
		srv.Hosted(), *segments, arch.Collection.NumShots(), *addr)

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	errc := make(chan error, 1)
	go func() { errc <- httpSrv.ListenAndServe() }()
	select {
	case err := <-errc:
		if err != nil && !errors.Is(err, http.ErrServerClosed) {
			fail("serve: %v", err)
		}
	case <-ctx.Done():
		fmt.Println("ivrsegment: shutting down")
		shutdownCtx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		if err := httpSrv.Shutdown(shutdownCtx); err != nil {
			fail("shutdown: %v", err)
		}
	}
}

// parseOrdinals parses the -host list ("0,2,3"); empty means all.
func parseOrdinals(s string) ([]int, error) {
	if strings.TrimSpace(s) == "" {
		return nil, nil
	}
	var out []int
	for _, part := range strings.Split(s, ",") {
		v, err := strconv.Atoi(strings.TrimSpace(part))
		if err != nil {
			return nil, fmt.Errorf("bad -host entry %q", part)
		}
		out = append(out, v)
	}
	return out, nil
}

// startPprof serves net/http/pprof's /debug/pprof endpoints on a
// dedicated side listener so the scoring tier can be profiled under
// live load (see LOADTEST.md, "Profiling live traffic"). Empty addr
// disables it. Bind to localhost (or firewall the port).
func startPprof(addr string) {
	if addr == "" {
		return
	}
	go func() {
		fmt.Printf("ivrsegment: pprof on http://%s/debug/pprof/\n", addr)
		if err := http.ListenAndServe(addr, nil); err != nil {
			fmt.Fprintf(os.Stderr, "ivrsegment: pprof listener: %v\n", err)
		}
	}()
}

func fail(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "ivrsegment: "+format+"\n", args...)
	os.Exit(1)
}
