// Command ivrsearch runs queries against a synthetic archive with
// optional implicit-feedback adaptation, demonstrating the retrieval
// side of the system from the shell. With -server it becomes a remote
// front-end: the same loop driven through the typed /api/v1 client
// SDK against a running ivrserve.
//
// Usage:
//
//	ivrsearch -query "paboasts gound"            # plain search on a fresh tiny archive
//	ivrsearch -topic 0                           # use a generated evaluation topic (+AP)
//	ivrsearch -topic 0 -feedback 3               # click the top-3 results, re-rank, compare
//	ivrsearch -index archive/archive.ivridx -query "..."   # search a saved index
//	ivrsearch -scorer tfidf -k 5 -topic 2
//	ivrsearch -server http://localhost:8080 -query "cup final" -feedback 3
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"time"

	"repro/internal/client"
	"repro/internal/collection"
	"repro/internal/core"
	"repro/internal/eval"
	"repro/internal/ilog"
	"repro/internal/index"
	"repro/internal/search"
	"repro/internal/store"
	"repro/internal/synth"
	"repro/internal/text"
)

func main() {
	var (
		indexPath   = flag.String("index", "", "saved index file (ivrgen output); disables adaptation")
		queryStr    = flag.String("query", "", "free-text query")
		topicNum    = flag.Int("topic", -1, "use generated search topic N as the query (enables AP report)")
		feedback    = flag.Int("feedback", 0, "simulate clicks+plays on the top-N results, then re-query")
		scorer      = flag.String("scorer", "bm25", "ranking function: bm25, tfidf, dirichlet-lm")
		k           = flag.Int("k", 10, "results to display")
		seed        = flag.Int64("seed", 2008, "archive seed")
		full        = flag.Bool("full", false, "use the full-scale archive (slower)")
		archivePath = flag.String("archive", "", "saved archive container (.ivrarc) to search")
		serverURL   = flag.String("server", "", "ivrserve base URL; search remotely via the /api/v1 client SDK")
	)
	flag.Parse()

	// Remote mode: the whole loop over the wire through the SDK.
	if *serverURL != "" {
		if *queryStr == "" {
			fail("-server mode requires -query")
		}
		if err := runRemote(*serverURL, *queryStr, *k, *feedback); err != nil {
			fail("%v", err)
		}
		return
	}

	var sc search.Scorer
	switch *scorer {
	case "bm25":
		sc = search.BM25{}
	case "tfidf":
		sc = search.TFIDF{}
	case "dirichlet-lm":
		sc = search.DirichletLM{}
	default:
		fail("unknown scorer %q", *scorer)
	}

	// Saved-index mode: plain engine search, no collection metadata.
	if *indexPath != "" {
		if *queryStr == "" {
			fail("-index mode requires -query")
		}
		ix, err := index.Load(*indexPath)
		if err != nil {
			fail("load index: %v", err)
		}
		engine := search.NewEngine(ix, text.NewAnalyzer())
		res, err := engine.Search(engine.ParseText(*queryStr), search.Options{K: *k, Scorer: sc})
		if err != nil {
			fail("search: %v", err)
		}
		fmt.Printf("%d candidates for %q\n", res.Candidates, *queryStr)
		for i, h := range res.Hits {
			fmt.Printf("%3d. %-18s %.4f\n", i+1, h.ID, h.Score)
		}
		return
	}

	var arch *synth.Archive
	var err error
	if *archivePath != "" {
		arch, err = store.Load(*archivePath)
		if err != nil {
			fail("load archive: %v", err)
		}
	} else {
		cfg := synth.TinyConfig()
		if *full {
			cfg = synth.DefaultConfig()
		}
		arch, err = synth.Generate(cfg, *seed)
		if err != nil {
			fail("generate: %v", err)
		}
	}
	sys, err := core.NewSystemFromCollection(arch.Collection, core.Config{
		UseImplicit: *feedback > 0,
		K:           100,
		Scorer:      sc,
	})
	if err != nil {
		fail("system: %v", err)
	}

	query := *queryStr
	var judg eval.Judgments
	if *topicNum >= 0 {
		if *topicNum >= len(arch.Truth.SearchTopics) {
			fail("topic %d out of range (have %d)", *topicNum, len(arch.Truth.SearchTopics))
		}
		st := arch.Truth.SearchTopics[*topicNum]
		query = st.Query
		judg = eval.Judgments{}
		for shot, g := range arch.Truth.Qrels[st.ID] {
			judg[string(shot)] = g
		}
		fmt.Printf("topic %d (%s): %q, %d relevant shots\n", st.ID, st.Category, query, judg.NumRelevant(1))
	}
	if query == "" {
		fail("need -query or -topic")
	}

	sess := sys.NewSession("cli", nil)
	res, err := sess.Query(query)
	if err != nil {
		fail("search: %v", err)
	}
	printResults("initial ranking", res, judg, *k, arch)

	if *feedback > 0 {
		n := *feedback
		if n > len(res.Hits) {
			n = len(res.Hits)
		}
		fmt.Printf("\nsimulating click+play on the top %d results...\n", n)
		for i := 0; i < n; i++ {
			id := res.Hits[i].ID
			events := []ilog.Event{
				{SessionID: "cli", Action: ilog.ActionClickKeyframe, ShotID: id, Rank: i},
				{SessionID: "cli", Action: ilog.ActionPlay, ShotID: id, Rank: i, Seconds: 15},
			}
			if err := sess.ObserveAll(events); err != nil {
				fail("observe: %v", err)
			}
		}
		adapted, err := sess.Query(query)
		if err != nil {
			fail("adapted search: %v", err)
		}
		fmt.Println()
		printResults("adapted ranking", adapted, judg, *k, arch)
	}
}

// runRemote drives the adaptive loop against a running ivrserve: one
// session, a search, simulated click+play feedback on the top hits,
// and the adapted re-ranking — all through the typed client.
func runRemote(serverURL, query string, k, feedback int) error {
	c, err := client.New(serverURL,
		client.WithTimeout(30*time.Second),
		client.WithRetry(2, 200*time.Millisecond))
	if err != nil {
		return err
	}
	ctx := context.Background()
	if _, err := c.Healthz(ctx); err != nil {
		return fmt.Errorf("server not reachable: %w", err)
	}
	id, err := c.CreateSession(ctx, client.CreateSessionRequest{UserID: "ivrsearch"})
	if err != nil {
		return fmt.Errorf("create session: %w", err)
	}
	defer c.DeleteSession(ctx, id)

	page, err := c.Search(ctx, client.SearchRequest{SessionID: id, Query: query, Limit: k})
	if err != nil {
		return fmt.Errorf("search: %w", err)
	}
	printRemotePage("initial ranking", page)

	if feedback <= 0 || len(page.Hits) == 0 {
		return nil
	}
	n := feedback
	if n > len(page.Hits) {
		n = len(page.Hits)
	}
	fmt.Printf("\nsimulating click+play on the top %d results...\n", n)
	var events []ilog.Event
	for i := 0; i < n; i++ {
		h := page.Hits[i]
		events = append(events,
			ilog.Event{Action: ilog.ActionClickKeyframe, ShotID: h.ShotID, Rank: i},
			ilog.Event{Action: ilog.ActionPlay, ShotID: h.ShotID, Rank: i, Seconds: 15},
		)
	}
	if _, err := c.SendEvents(ctx, id, events); err != nil {
		return fmt.Errorf("send events: %w", err)
	}
	adapted, err := c.Search(ctx, client.SearchRequest{SessionID: id, Query: query, Limit: k})
	if err != nil {
		return fmt.Errorf("adapted search: %w", err)
	}
	fmt.Println()
	printRemotePage("adapted ranking", adapted)
	return nil
}

func printRemotePage(label string, page *client.SearchPage) {
	fmt.Printf("%s (%d candidates, %d ranked, step %d):\n",
		label, page.Candidates, page.Total, page.Step)
	for _, h := range page.Hits {
		title := ""
		if h.Title != "" {
			title = fmt.Sprintf("  [%s] %s", h.Category, h.Title)
		}
		fmt.Printf("%3d. %-16s %8.4f%s\n", h.Rank+1, h.ShotID, h.Score, title)
	}
}

func printResults(label string, res search.Results, judg eval.Judgments, k int, arch *synth.Archive) {
	fmt.Printf("%s (%d candidates):\n", label, res.Candidates)
	for i, h := range res.Hits {
		if i >= k {
			break
		}
		mark := " "
		if judg != nil && judg[h.ID] >= 1 {
			mark = "*"
		}
		title := ""
		if story := arch.Collection.StoryOfShot(collection.ShotID(h.ID)); story != nil {
			title = fmt.Sprintf("  [%s] %s", story.Category, story.Title)
		}
		fmt.Printf("%3d.%s %-16s %8.4f%s\n", i+1, mark, h.ID, h.Score, title)
	}
	if judg != nil {
		m := eval.Compute(res.IDs(), judg)
		fmt.Printf("     AP=%.3f P@10=%.2f nDCG@10=%.3f\n", m.AP, m.P10, m.NDCG10)
	}
}

func fail(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "ivrsearch: "+format+"\n", args...)
	os.Exit(1)
}
