// Command ivreval scores TREC-format run files against qrels — a
// trec_eval-style tool over the library's metric layer, so runs
// produced by ivrsim (or any external system) can be compared and
// significance-tested.
//
// Usage:
//
//	ivreval -run sys.run -qrels qrels.txt
//	ivreval -run a.run -run2 b.run -qrels qrels.txt    # paired comparison
//	ivreval -run sys.run -qrels qrels.txt -perquery
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/eval"
)

func main() {
	var (
		runPath  = flag.String("run", "", "run file (required)")
		run2Path = flag.String("run2", "", "second run for paired significance tests")
		qrelPath = flag.String("qrels", "", "qrels file (required)")
		perQuery = flag.Bool("perquery", false, "print per-query AP")
	)
	flag.Parse()
	if *runPath == "" || *qrelPath == "" {
		fail("need -run and -qrels")
	}
	qs := loadQrels(*qrelPath)
	run := loadRun(*runPath)
	perQ, mean, skipped := eval.EvaluateRun(run, qs)
	fmt.Printf("run %q: %d queries scored, %d without judgements\n\n",
		run.Tag, len(perQ), len(skipped))
	printMetrics(mean)
	if *perQuery {
		fmt.Println("\nper-query AP:")
		for _, qid := range run.QueryIDs() {
			if m, ok := perQ[qid]; ok {
				fmt.Printf("  %-24s %.4f\n", qid, m.AP)
			}
		}
	}
	if *run2Path == "" {
		return
	}
	run2 := loadRun(*run2Path)
	perQ2, mean2, _ := eval.EvaluateRun(run2, qs)
	fmt.Printf("\nrun %q:\n", run2.Tag)
	printMetrics(mean2)
	// Paired vectors over the common judged queries.
	var a, b []float64
	for _, qid := range run.QueryIDs() {
		m1, ok1 := perQ[qid]
		m2, ok2 := perQ2[qid]
		if ok1 && ok2 {
			a = append(a, m1.AP)
			b = append(b, m2.AP)
		}
	}
	if len(a) < 2 {
		fmt.Println("\n(too few common queries for significance tests)")
		return
	}
	tt, err := eval.PairedTTest(a, b)
	if err != nil {
		fail("t-test: %v", err)
	}
	wx, err := eval.WilcoxonSignedRank(a, b)
	if err != nil {
		fail("wilcoxon: %v", err)
	}
	rz, err := eval.RandomizationTest(a, b, 10000, 1)
	if err != nil {
		fail("randomisation: %v", err)
	}
	fmt.Printf("\npaired comparison over %d common queries (%s -> %s):\n", len(a), run.Tag, run2.Tag)
	fmt.Printf("  MAP %-7.4f -> %-7.4f (%+.1f%%)\n",
		mean.AP, mean2.AP, eval.RelImprovement(mean.AP, mean2.AP))
	fmt.Printf("  paired t-test:     %s\n", tt)
	fmt.Printf("  wilcoxon:          %s\n", wx)
	fmt.Printf("  randomisation:     %s\n", rz)
}

func printMetrics(m eval.Metrics) {
	fmt.Printf("  MAP      %.4f\n", m.AP)
	fmt.Printf("  P@5      %.4f    P@10   %.4f    P@20  %.4f\n", m.P5, m.P10, m.P20)
	fmt.Printf("  nDCG@10  %.4f    MRR    %.4f    bpref %.4f\n", m.NDCG10, m.RR, m.Bpref)
	fmt.Printf("  R@10     %.4f    R@100  %.4f\n", m.R10, m.R100)
}

func loadRun(path string) *eval.Run {
	f, err := os.Open(path)
	if err != nil {
		fail("%v", err)
	}
	defer f.Close()
	run, err := eval.ReadRun(f)
	if err != nil {
		fail("%v", err)
	}
	return run
}

func loadQrels(path string) eval.QrelSet {
	f, err := os.Open(path)
	if err != nil {
		fail("%v", err)
	}
	defer f.Close()
	qs, err := eval.ReadQrels(f)
	if err != nil {
		fail("%v", err)
	}
	return qs
}

func fail(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "ivreval: "+format+"\n", args...)
	os.Exit(1)
}
